// Query-engine throughput: {online, bicore, delta} × thread counts ×
// {typical, small-community} parameter points on a registry dataset,
// through the batched zero-allocation QueryEngine, plus a
// per-query-allocation baseline (the by-value QueryCommunity API) to
// quantify what the scratch arena buys. The baseline comparison runs at
// the small-community point (α = β = δ), where per-query O(n) allocation
// and clearing dominates the output-sensitive query itself. Emits
// BENCH_query.json.
//
// Environment:
//   ABCS_BENCH_DATASET   registry dataset name (default BS), or "XL" — a
//                        million-vertex synthetic graph local to this
//                        bench (not in the Table I registry), where the
//                        small-community/large-graph regime is real
//   ABCS_BENCH_QUERIES   queries per configuration (default 100)
//   argv[1]              output JSON path (default BENCH_query.json)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/bicore_index.h"
#include "core/delta_index.h"
#include "core/query_engine.h"

namespace {

struct Row {
  const char* method;
  const char* point;  ///< "typical" (0.7δ), "small" (δ) or "tiny"
  uint32_t alpha;
  uint32_t beta;
  unsigned threads;
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
  uint64_t touched_arcs = 0;
  uint64_t total_edges = 0;
};

std::vector<unsigned> ThreadCounts() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> counts{1, 2, 4, hw};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

std::vector<abcs::QueryRequest> MakeRequests(
    const abcs::bench::PreparedDataset& ds, uint32_t alpha, uint32_t beta,
    uint32_t count) {
  const std::vector<abcs::VertexId> qs =
      abcs::bench::SampleCoreVertices(ds, alpha, beta, 64, 1234);
  std::vector<abcs::QueryRequest> requests;
  if (qs.empty()) return requests;
  requests.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    requests[i] = abcs::QueryRequest{qs[i % qs.size()], alpha, beta};
  }
  return requests;
}

struct Point {
  const char* label;
  uint32_t alpha;
  uint32_t beta;
};

// The motivating regime: a community of a handful of edges on a large
// graph, where per-query O(n) allocation dwarfs the output-sensitive
// retrieval. Fixes α = δ and pushes β to the 8th-largest δ-level offset,
// shrinking the (α,β)-core to the densest nugget of the graph.
bool TinyPoint(const abcs::bench::PreparedDataset& ds, Point* out) {
  if (ds.delta() < 1) return false;
  std::vector<uint32_t> offsets(ds.graph.NumVertices());
  for (abcs::VertexId v = 0; v < ds.graph.NumVertices(); ++v) {
    offsets[v] = ds.decomp.sa(ds.delta(), v);
  }
  std::sort(offsets.begin(), offsets.end(), std::greater<>());
  if (offsets.size() <= 8 || offsets[7] <= ds.delta()) return false;
  *out = Point{"tiny", ds.delta(), offsets[7]};
  return true;
}

// Million-vertex throughput dataset: big enough that a per-query O(n)
// allocation+clear dwarfs a small community's output-sensitive retrieval.
// Local to this bench so the Table I figure reproductions are unaffected.
abcs::DatasetSpec XlSpec() {
  abcs::DatasetSpec spec;
  spec.name = "XL";
  spec.num_upper = 400000;
  spec.num_lower = 600000;
  spec.num_edges = 1500000;
  spec.skew_upper = 2.3;
  spec.skew_lower = 2.3;
  spec.weights = abcs::WeightModel::kUniform;
  spec.seed = 777;
  spec.paper_note = "synthetic query-throughput dataset (not in Table I)";
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using abcs::bench::PreparedDataset;
  const char* dataset_env = std::getenv("ABCS_BENCH_DATASET");
  const std::string dataset = dataset_env ? dataset_env : "BS";
  const char* out_path = argc > 1 ? argv[1] : "BENCH_query.json";

  const abcs::DatasetSpec* spec = abcs::FindDataset(dataset);
  const abcs::DatasetSpec xl = XlSpec();
  if (spec == nullptr && dataset == "XL") spec = &xl;
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown dataset %s\n", dataset.c_str());
    return 2;
  }
  const PreparedDataset ds = abcs::bench::Prepare(*spec);
  const uint32_t num_queries = abcs::bench::NumQueries();

  const abcs::DeltaIndex delta = abcs::DeltaIndex::Build(ds.graph, &ds.decomp);
  const abcs::BicoreIndex bicore =
      abcs::BicoreIndex::Build(ds.graph, &ds.decomp);

  std::vector<Point> points = {
      {"typical", abcs::bench::ScaledParam(ds.delta(), 0.7),
       abcs::bench::ScaledParam(ds.delta(), 0.7)},
      {"small", ds.delta(), ds.delta()},
  };
  Point tiny;
  const bool have_tiny = TinyPoint(ds, &tiny);
  if (have_tiny) points.push_back(tiny);

  std::printf("query throughput on %s: n=%u |E|=%u δ=%u, %u queries/config\n",
              dataset.c_str(), ds.graph.NumVertices(), ds.graph.NumEdges(),
              ds.delta(), num_queries);
  std::printf("%-8s %-8s %6s %6s %8s %12s %12s %12s %14s\n", "method",
              "point", "a", "b", "threads", "qps", "p50(us)", "p99(us)",
              "touched_arcs");

  std::vector<Row> rows;
  for (const Point& point : points) {
    const std::vector<abcs::QueryRequest> requests =
        MakeRequests(ds, point.alpha, point.beta, num_queries);
    if (requests.empty()) {
      std::fprintf(stderr, "empty (%u,%u)-core on %s — skipping %s point\n",
                   point.alpha, point.beta, dataset.c_str(), point.label);
      continue;
    }
    for (const abcs::QueryMethod method :
         {abcs::QueryMethod::kOnline, abcs::QueryMethod::kBicore,
          abcs::QueryMethod::kDelta}) {
      const abcs::QueryEngine engine(ds.graph, method, &delta, &bicore);
      for (const unsigned threads : ThreadCounts()) {
        const abcs::BatchResult warm = engine.RunBatch(requests, {threads});
        const abcs::BatchResult run = engine.RunBatch(requests, {threads});
        (void)warm;
        Row row{abcs::QueryMethodName(method), point.label, point.alpha,
                point.beta, threads};
        row.qps = run.QueriesPerSecond();
        row.p50_us = run.stats.p50_seconds * 1e6;
        row.p99_us = run.stats.p99_seconds * 1e6;
        row.touched_arcs = run.stats.touched_arcs;
        row.total_edges = run.stats.total_edges;
        rows.push_back(row);
        std::printf("%-8s %-8s %6u %6u %8u %12.1f %12.3f %12.3f %14llu\n",
                    row.method, row.point, row.alpha, row.beta, threads,
                    row.qps, row.p50_us, row.p99_us,
                    static_cast<unsigned long long>(row.touched_arcs));
      }
    }
  }

  // Per-query-allocation baseline at the smallest-community point:
  // identical delta-index queries through the by-value API, which
  // allocates and zeroes fresh O(n) visited state per call.
  // Single-threaded on both sides, so the ratio isolates the arena.
  const Point baseline_point =
      have_tiny ? tiny : Point{"small", ds.delta(), ds.delta()};
  double baseline_qps = 0;
  double engine_qps_1t = 0;
  {
    const std::vector<abcs::QueryRequest> requests = MakeRequests(
        ds, baseline_point.alpha, baseline_point.beta, num_queries);
    if (!requests.empty()) {
      for (const abcs::QueryRequest& r : requests) {  // warm caches
        (void)delta.QueryCommunity(r.q, r.alpha, r.beta);
      }
      abcs::Timer timer;
      for (const abcs::QueryRequest& r : requests) {
        (void)delta.QueryCommunity(r.q, r.alpha, r.beta);
      }
      const double secs = timer.Seconds();
      baseline_qps = secs > 0 ? static_cast<double>(num_queries) / secs : 0;
    }
    for (const Row& row : rows) {
      if (row.threads == 1 && std::string(row.method) == "delta" &&
          std::string(row.point) == baseline_point.label) {
        engine_qps_1t = row.qps;
      }
    }
  }
  const double speedup = baseline_qps > 0 ? engine_qps_1t / baseline_qps : 0;
  std::printf(
      "alloc-baseline (delta, %s, 1 thread): %.1f qps; scratch engine: "
      "%.1f qps; speedup %.2fx\n",
      baseline_point.label, baseline_qps, engine_qps_1t, speedup);

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"dataset\": \"%s\",\n  \"num_vertices\": %u,\n"
               "  \"num_edges\": %u,\n  \"delta\": %u,\n"
               "  \"num_queries\": %u,\n  \"results\": [\n",
               dataset.c_str(), ds.graph.NumVertices(), ds.graph.NumEdges(),
               ds.delta(), num_queries);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(f,
                 "    {\"method\": \"%s\", \"point\": \"%s\", "
                 "\"alpha\": %u, \"beta\": %u, \"threads\": %u, "
                 "\"qps\": %.1f, \"p50_us\": %.3f, \"p99_us\": %.3f, "
                 "\"touched_arcs\": %llu, \"total_edges\": %llu}%s\n",
                 row.method, row.point, row.alpha, row.beta, row.threads,
                 row.qps, row.p50_us, row.p99_us,
                 static_cast<unsigned long long>(row.touched_arcs),
                 static_cast<unsigned long long>(row.total_edges),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"alloc_baseline_point\": \"%s\",\n"
               "  \"alloc_baseline_qps\": %.1f,\n"
               "  \"scratch_speedup_vs_alloc\": %.3f\n}\n",
               baseline_point.label, baseline_qps, speedup);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
