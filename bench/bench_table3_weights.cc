// Table III: SCS running time under different weight distributions on the
// DT-like dataset: AE (all equal), RW (random walk with restart), UF
// (uniform), SK (skew normal). Weights do not change the topology, so δ
// and the index are computed once.

#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/delta_index.h"
#include "core/scs_baseline.h"
#include "core/scs_expand.h"
#include "core/scs_peel.h"
#include "graph/weights.h"

int main() {
  const uint32_t queries = abcs::bench::NumQueries();
  const abcs::bench::PreparedDataset base =
      abcs::bench::Prepare(*abcs::FindDataset("DT"));
  const uint32_t t = abcs::bench::ScaledParam(base.delta(), 0.7);
  const std::vector<abcs::VertexId> qs =
      abcs::bench::SampleCoreVertices(base, t, t, queries, 999);

  std::printf(
      "Table III: SCS running time on DT under weight distributions "
      "(α=β=%u, avg over %u queries, seconds)\n",
      t, queries);
  std::printf("%-12s %12s %12s %12s %12s\n", "algorithm", "AE", "RW", "UF",
              "SK");

  const abcs::WeightModel models[] = {
      abcs::WeightModel::kAllEqual, abcs::WeightModel::kRandomWalk,
      abcs::WeightModel::kUniform, abcs::WeightModel::kSkewNormal};
  double baseline_s[4] = {0}, peel_s[4] = {0}, expand_s[4] = {0};
  for (int mi = 0; mi < 4; ++mi) {
    const abcs::BipartiteGraph g =
        abcs::ApplyWeightModel(base.graph, models[mi], 31337);
    // Topology unchanged: reuse the decomposition for the index.
    const abcs::DeltaIndex index = abcs::DeltaIndex::Build(g, &base.decomp);
    for (abcs::VertexId q : qs) {
      abcs::Timer timer;
      (void)abcs::ScsBaseline(g, q, t, t);
      baseline_s[mi] += timer.Seconds();
      timer.Reset();
      const abcs::Subgraph c1 = index.QueryCommunity(q, t, t);
      (void)abcs::ScsPeel(g, c1, q, t, t);
      peel_s[mi] += timer.Seconds();
      timer.Reset();
      const abcs::Subgraph c2 = index.QueryCommunity(q, t, t);
      (void)abcs::ScsExpand(g, c2, q, t, t);
      expand_s[mi] += timer.Seconds();
    }
  }
  const double n = qs.empty() ? 1.0 : static_cast<double>(qs.size());
  std::printf("%-12s %12.3e %12.3e %12.3e %12.3e\n", "SCS-Baseline",
              baseline_s[0] / n, baseline_s[1] / n, baseline_s[2] / n,
              baseline_s[3] / n);
  std::printf("%-12s %12.3e %12.3e %12.3e %12.3e\n", "SCS-Peel",
              peel_s[0] / n, peel_s[1] / n, peel_s[2] / n, peel_s[3] / n);
  std::printf("%-12s %12.3e %12.3e %12.3e %12.3e\n", "SCS-Expand",
              expand_s[0] / n, expand_s[1] / n, expand_s[2] / n,
              expand_s[3] / n);
  return 0;
}
