// Figure 11: index sizes (MB). I_v and I_δ are built and measured; the
// basic indexes are reported from the exact O(m) size estimator (the paper
// likewise reports "expected size" for builds that did not finish).

#include <cstdio>

#include "bench_common.h"
#include "core/basic_index.h"
#include "core/bicore_index.h"
#include "core/delta_index.h"

int main() {
  std::printf(
      "Figure 11: index size (MB; Ia/Ib from exact estimator; decomp = "
      "compact offset arenas, dense = the old 2*delta*n table)\n");
  std::printf("%-5s %10s %12s %12s %10s %10s %10s\n", "name", "Iv", "Ia_bs",
              "Ib_bs", "Idelta", "decomp", "dense");
  constexpr double kMb = 1024.0 * 1024.0;
  // One stored basic-index entry: (to, eid, offset) = 12 bytes.
  constexpr double kEntryBytes = 12.0;
  for (const abcs::DatasetSpec& spec : abcs::AllDatasets()) {
    const abcs::bench::PreparedDataset ds = abcs::bench::Prepare(spec);
    const abcs::BicoreIndex iv =
        abcs::BicoreIndex::Build(ds.graph, &ds.decomp);
    const abcs::DeltaIndex idelta =
        abcs::DeltaIndex::Build(ds.graph, &ds.decomp);
    const double ia_mb =
        static_cast<double>(abcs::BasicIndex::EstimateEntries(
            ds.graph, abcs::BasicIndexSide::kAlpha)) *
        kEntryBytes / kMb;
    const double ib_mb =
        static_cast<double>(abcs::BasicIndex::EstimateEntries(
            ds.graph, abcs::BasicIndexSide::kBeta)) *
        kEntryBytes / kMb;
    std::printf(
        "%-5s %10.2f %12.2f %12.2f %10.2f %10.2f %10.2f\n", spec.name.c_str(),
        static_cast<double>(iv.MemoryBytes()) / kMb, ia_mb, ib_mb,
        static_cast<double>(idelta.MemoryBytes()) / kMb,
        static_cast<double>(ds.decomp.MemoryBytes()) / kMb,
        static_cast<double>(abcs::DenseDecompositionBytes(
            ds.decomp.delta, ds.graph.NumVertices())) /
            kMb);
  }
  return 0;
}
