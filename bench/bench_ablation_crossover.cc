// Ablation A3: the SCS-Peel vs SCS-Expand crossover. The paper observes
// (Fig. 13 discussion) that Expand wins when size(R) ≪ size(C_{α,β}(q))
// and Peel wins when R stays close to C. We control size(R)/size(C)
// directly by planting a high-weight block of varying size inside a large
// uniform community and report both times plus the measured ratio.

#include <cstdio>

#include "bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/delta_index.h"
#include "core/scs_auto.h"
#include "core/scs_expand.h"
#include "core/scs_peel.h"
#include "graph/graph_builder.h"

namespace {

abcs::BipartiteGraph MakePlantedBlockGraph(uint32_t blob_vertices,
                                           uint32_t block_side,
                                           uint64_t seed) {
  abcs::GraphBuilder builder;
  abcs::Rng rng(seed);
  // Dense-ish low-weight blob: every upper vertex gets ~10 random edges.
  for (uint32_t u = 0; u < blob_vertices; ++u) {
    for (int k = 0; k < 10; ++k) {
      builder.AddEdge(u,
                      static_cast<uint32_t>(rng.NextBounded(blob_vertices)),
                      1.0 + rng.NextBounded(8));
    }
  }
  // High-weight complete block (weight 1000) in the corner.
  for (uint32_t i = 0; i < block_side; ++i) {
    for (uint32_t j = 0; j < block_side; ++j) {
      builder.AddEdge(i, j, 1000.0);
    }
  }
  abcs::BipartiteGraph g;
  abcs::Status st = builder.Build(&g);
  if (!st.ok()) std::abort();
  return g;
}

}  // namespace

int main() {
  const uint32_t reps = abcs::bench::NumQueries();
  std::printf(
      "Ablation A3: Peel vs Expand crossover, planted |R| inside a 60k-edge "
      "community (α=β=5, %u reps)\n",
      reps);
  std::printf("%10s %10s %10s %12s %12s %12s %10s %8s\n", "block", "|R|",
              "|C|", "peel(s)", "expand(s)", "auto(s)", "peel/exp", "plan");
  abcs::QueryScratch scratch;
  abcs::ScsWorkspace ws;
  for (uint32_t block : {8u, 16u, 32u, 64u, 128u, 256u}) {
    const abcs::BipartiteGraph g = MakePlantedBlockGraph(6000, block, 99);
    const abcs::DeltaIndex index = abcs::DeltaIndex::Build(g);
    const abcs::VertexId q = 0;
    const abcs::Subgraph c = index.QueryCommunity(q, 5, 5);
    if (c.Empty()) {
      std::printf("%10u   (empty community)\n", block);
      continue;
    }
    double peel_s = 0, expand_s = 0, auto_s = 0;
    std::size_t r_size = 0;
    abcs::ScsStats auto_stats;
    for (uint32_t rep = 0; rep < reps; ++rep) {
      abcs::Timer timer;
      const abcs::ScsResult rp =
          abcs::ScsPeel(g, c, q, 5, 5, nullptr, &scratch, &ws);
      peel_s += timer.Seconds();
      timer.Reset();
      const abcs::ScsResult re =
          abcs::ScsExpand(g, c, q, 5, 5, {}, nullptr, &scratch, &ws);
      expand_s += timer.Seconds();
      timer.Reset();
      const abcs::ScsResult ra = abcs::ScsQuery(
          g, c, q, 5, 5, abcs::ScsAlgo::kAuto, {}, &auto_stats, &scratch, &ws);
      auto_s += timer.Seconds();
      if (rp.significance != re.significance ||
          rp.significance != ra.significance) {
        std::fprintf(stderr, "MISMATCH at block=%u\n", block);
        return 1;
      }
      r_size = rp.community.Size();
    }
    std::printf("%10u %10zu %10zu %12.3e %12.3e %12.3e %9.2fx %8s\n", block,
                r_size, c.Size(), peel_s / reps, expand_s / reps,
                auto_s / reps, peel_s / (expand_s > 0 ? expand_s : 1e-12),
                abcs::ScsAlgoName(auto_stats.algo_used));
  }
  return 0;
}
