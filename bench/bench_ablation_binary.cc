// Ablation A1 (paper §IV-B remark): SCS-Binary vs SCS-Expand. The paper
// reports SCS-Binary at 0.86×–1.08× the running time of SCS-Expand, with
// an edge for SCS-Binary when few distinct weight values exist. We sweep
// the weight models (AE has 1 distinct value, RW/UF/SK are continuous) and
// a quantised-uniform model with 8 distinct values.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/delta_index.h"
#include "core/scs_binary.h"
#include "core/scs_expand.h"
#include "graph/weights.h"

int main() {
  const uint32_t queries = abcs::bench::NumQueries();
  const abcs::bench::PreparedDataset base =
      abcs::bench::Prepare(*abcs::FindDataset("DT"));
  const uint32_t t = abcs::bench::ScaledParam(base.delta(), 0.7);
  const std::vector<abcs::VertexId> qs =
      abcs::bench::SampleCoreVertices(base, t, t, queries, 2222);

  std::printf(
      "Ablation A1: SCS-Binary (incremental vs pre-PR fresh-peel) and "
      "SCS-Expand on DT (α=β=%u, avg over %u queries)\n",
      t, queries);
  std::printf("%-12s %12s %12s %12s %10s %10s %12s\n", "weights", "expand(s)",
              "binary(s)", "fresh(s)", "bin/exp", "fresh/bin", "probes/q");

  struct Variant {
    const char* name;
    abcs::BipartiteGraph graph;
  };
  std::vector<Variant> variants;
  variants.push_back(
      {"UF", abcs::ApplyWeightModel(base.graph, abcs::WeightModel::kUniform,
                                    7)});
  variants.push_back({"SK", abcs::ApplyWeightModel(
                                base.graph, abcs::WeightModel::kSkewNormal,
                                7)});
  variants.push_back({"RW", abcs::ApplyWeightModel(
                                base.graph, abcs::WeightModel::kRandomWalk,
                                7)});
  {
    // UF8: uniform weights quantised to 8 distinct values — the regime
    // where binary search needs only log2(8) = 3 feasibility peels.
    abcs::BipartiteGraph uf =
        abcs::ApplyWeightModel(base.graph, abcs::WeightModel::kUniform, 7);
    std::vector<abcs::Weight> w(uf.NumEdges());
    for (abcs::EdgeId e = 0; e < uf.NumEdges(); ++e) {
      w[e] = std::ceil(uf.GetWeight(e) / 12.5);
    }
    variants.push_back({"UF8", uf.WithWeights(w)});
  }

  for (const Variant& variant : variants) {
    const abcs::DeltaIndex index =
        abcs::DeltaIndex::Build(variant.graph, &base.decomp);
    // Pooled workspace/scratch for the incremental kernels, matching the
    // engine's steady state; the fresh baseline allocates per call, as the
    // pre-PR implementation did.
    abcs::QueryScratch scratch;
    abcs::ScsWorkspace ws;
    double expand_s = 0, binary_s = 0, fresh_s = 0;
    abcs::ScsStats binary_stats;
    for (abcs::VertexId q : qs) {
      const abcs::Subgraph c = index.QueryCommunity(q, t, t);
      abcs::Timer timer;
      const abcs::ScsResult re =
          abcs::ScsExpand(variant.graph, c, q, t, t, {}, nullptr, &scratch,
                          &ws);
      expand_s += timer.Seconds();
      timer.Reset();
      const abcs::ScsResult rb = abcs::ScsBinary(variant.graph, c, q, t, t,
                                                 &binary_stats, &scratch, &ws);
      binary_s += timer.Seconds();
      timer.Reset();
      const abcs::ScsResult rf =
          abcs::ScsBinaryFreshPeel(variant.graph, c, q, t, t);
      fresh_s += timer.Seconds();
      if (re.found != rb.found || rf.found != rb.found ||
          (re.found && (re.significance != rb.significance ||
                        rf.significance != rb.significance))) {
        std::fprintf(stderr, "MISMATCH q=%u on %s\n", q, variant.name);
        return 1;
      }
    }
    const double n = qs.empty() ? 1.0 : static_cast<double>(qs.size());
    std::printf("%-12s %12.3e %12.3e %12.3e %9.2fx %9.2fx %12.1f\n",
                variant.name, expand_s / n, binary_s / n, fresh_s / n,
                binary_s / (expand_s > 0 ? expand_s : 1e-12),
                fresh_s / (binary_s > 0 ? binary_s : 1e-12),
                static_cast<double>(binary_stats.incremental_probes) / n);
  }
  return 0;
}
