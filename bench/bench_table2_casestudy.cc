// Table II: case-study statistics for a single query on the comedy slice
// (α = β = 45): |U|, |M|, Ravg, Rmin, Mavg, and the Jaccard vertex
// similarity to SC, per community model.

#include <cstdio>

#include "bench_common.h"
#include "core/delta_index.h"
#include "core/scs_peel.h"
#include "graph/generators.h"
#include "models/biclique.h"
#include "models/bitruss.h"
#include "models/cstar.h"
#include "models/metrics.h"

int main() {
  abcs::PlantedSpec spec;
  spec.seed = 20210416;  // same instance as bench_fig6_quality
  abcs::PlantedGraph pg = abcs::MakePlantedCommunities(spec);
  abcs::PlantedGraph slice = abcs::ExtractGenreSlice(pg, /*genre=*/0);
  const abcs::BipartiteGraph& g = slice.graph;

  abcs::VertexId q = abcs::kInvalidVertex;
  for (uint32_t u = 0; u < g.NumUpper(); ++u) {
    if (slice.user_block[u] == 0) {
      q = u;
      break;
    }
  }
  if (q == abcs::kInvalidVertex) return 1;
  const uint32_t t = 45;

  const abcs::DeltaIndex index = abcs::DeltaIndex::Build(g);
  const abcs::Subgraph core = index.QueryCommunity(q, t, t);
  const abcs::ScsResult sc = abcs::ScsPeel(g, core, q, t, t);
  const abcs::Subgraph bitruss =
      abcs::QueryBitrussCommunity(g, q, static_cast<uint64_t>(t) * t);
  abcs::Subgraph biclique = abcs::QueryBicliqueCommunity(g, q, 45);
  if (biclique.Empty()) biclique = abcs::QueryBicliqueCommunity(g, q, 1);
  const abcs::Subgraph cstar = abcs::QueryCStarCommunity(g, q, 4.0);

  std::printf("Table II: statistics of query results, q=%u, α=β=%u\n", q, t);
  std::printf("%-12s %8s %8s %8s %8s %8s %8s\n", "model", "|U|", "|M|",
              "Ravg", "Rmin", "Mavg", "Sim(%)");
  struct Row {
    const char* model;
    const abcs::Subgraph* sub;
  };
  const Row rows[] = {{"SC", &sc.community},
                      {"(a,b)-core", &core},
                      {"bitruss", &bitruss},
                      {"biclique", &biclique},
                      {"C4*", &cstar}};
  for (const Row& row : rows) {
    if (row.sub->Empty()) {
      std::printf("%-12s   (empty)\n", row.model);
      continue;
    }
    const abcs::SubgraphStats stats = abcs::ComputeStats(g, *row.sub);
    std::printf("%-12s %8u %8u %8.2f %8.1f %8.2f %8.2f\n", row.model,
                stats.num_upper, stats.num_lower, stats.avg_weight,
                stats.min_weight, abcs::AverageUpperDegree(g, *row.sub),
                100.0 * abcs::JaccardVertexSimilarity(g, *row.sub,
                                                      sc.community));
  }
  return 0;
}
