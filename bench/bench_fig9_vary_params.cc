// Figure 9: (α,β)-community retrieval time varying α and β on EN-like and
// SO-like datasets.
//  (a)/(b): α = β = c·δ, c ∈ {0.1 .. 0.9}
//  (c):     α = 0.5δ fixed, β = c·δ   (EN)
//  (d):     β = 0.5δ fixed, α = c·δ   (SO)

#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/bicore_index.h"
#include "core/delta_index.h"
#include "core/online_query.h"
#include "core/query_scratch.h"

namespace {

void RunSeries(const abcs::bench::PreparedDataset& ds, const char* label,
               bool vary_both, bool vary_beta) {
  const uint32_t queries = abcs::bench::NumQueries();
  const abcs::BicoreIndex iv = abcs::BicoreIndex::Build(ds.graph, &ds.decomp);
  const abcs::DeltaIndex idelta =
      abcs::DeltaIndex::Build(ds.graph, &ds.decomp);
  std::printf("%s (avg over up to %u queries, seconds)\n", label, queries);
  std::printf("%5s %6s %6s %12s %12s %12s\n", "c", "alpha", "beta", "Qo",
              "Qv", "Qopt");
  for (double c = 0.1; c <= 0.91; c += 0.1) {
    uint32_t alpha, beta;
    if (vary_both) {
      alpha = beta = abcs::bench::ScaledParam(ds.delta(), c);
    } else if (vary_beta) {
      alpha = abcs::bench::ScaledParam(ds.delta(), 0.5);
      beta = abcs::bench::ScaledParam(ds.delta(), c);
    } else {
      alpha = abcs::bench::ScaledParam(ds.delta(), c);
      beta = abcs::bench::ScaledParam(ds.delta(), 0.5);
    }
    const std::vector<abcs::VertexId> qs =
        abcs::bench::SampleCoreVertices(ds, alpha, beta, queries, 777);
    if (qs.empty()) {
      std::printf("%5.1f %6u %6u   (empty core)\n", c, alpha, beta);
      continue;
    }
    double online_s = 0, bicore_s = 0, opt_s = 0;
    abcs::QueryScratch scratch;
    abcs::Subgraph c_out;
    for (abcs::VertexId q : qs) {
      abcs::Timer timer;
      abcs::QueryCommunityOnline(ds.graph, q, alpha, beta, scratch, &c_out);
      online_s += timer.Seconds();
      timer.Reset();
      iv.QueryCommunity(q, alpha, beta, scratch, &c_out);
      bicore_s += timer.Seconds();
      timer.Reset();
      idelta.QueryCommunity(q, alpha, beta, scratch, &c_out);
      opt_s += timer.Seconds();
    }
    const double n = static_cast<double>(qs.size());
    std::printf("%5.1f %6u %6u %12.3e %12.3e %12.3e\n", c, alpha, beta,
                online_s / n, bicore_s / n, opt_s / n);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const abcs::bench::PreparedDataset en =
      abcs::bench::Prepare(*abcs::FindDataset("EN"));
  const abcs::bench::PreparedDataset so =
      abcs::bench::Prepare(*abcs::FindDataset("SO"));
  RunSeries(en, "Figure 9(a): EN, alpha=beta=c*delta", true, false);
  RunSeries(so, "Figure 9(b): SO, alpha=beta=c*delta", true, false);
  RunSeries(en, "Figure 9(c): EN, alpha=0.5*delta, beta=c*delta", false,
            true);
  RunSeries(so, "Figure 9(d): SO, alpha=c*delta, beta=0.5*delta", false,
            false);
  return 0;
}
