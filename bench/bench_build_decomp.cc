// Decomposition build benchmark: naive 2δ-peel vs the output-sensitive
// incremental build (serial and τ-chunked parallel), plus the memory story
// — compact arena bytes vs the old dense 2δ·n table and the peak build
// footprint. Emits BENCH_build.json (schema documented in the README's
// "Index construction" section) for the CI bench-smoke artifact.
//
// Usage: bench_build_decomp [out.json]
// ABCS_BENCH_DATASETS: comma-separated registry names; falls back to
// ABCS_BENCH_DATASET (single name, shared with the other benches);
// default: all.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "abcore/offsets.h"
#include "bench_common.h"
#include "common/timer.h"

namespace {

double TimeBest(int reps, const auto& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    abcs::Timer timer;
    fn();
    best = std::min(best, timer.Seconds());
  }
  return best;
}

std::vector<abcs::DatasetSpec> SelectedDatasets() {
  const char* env = std::getenv("ABCS_BENCH_DATASETS");
  // Fall back to the singular variable the other benches honour, so
  // ABCS_BENCH_DATASET=BS restricts this bench too instead of silently
  // running all 11 datasets.
  if (env == nullptr || *env == '\0') env = std::getenv("ABCS_BENCH_DATASET");
  if (env == nullptr || *env == '\0') return abcs::AllDatasets();
  std::vector<abcs::DatasetSpec> out;
  std::string list(env);
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string name =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (const abcs::DatasetSpec* spec = abcs::FindDataset(name)) {
      out.push_back(*spec);
    } else if (!name.empty()) {
      std::fprintf(stderr, "unknown dataset %s\n", name.c_str());
      std::exit(1);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

struct Row {
  std::string name;
  uint32_t n = 0, m = 0, delta = 0;
  double naive_seconds = 0;
  std::vector<std::pair<unsigned, double>> incremental;  // (threads, s)
  std::size_t arena_bytes = 0, dense_bytes = 0, transient_bytes_1t = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_build.json";
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> thread_counts{1};
  for (unsigned t = 2; t <= hw; t *= 2) thread_counts.push_back(t);
  if ((hw & (hw - 1)) != 0) thread_counts.push_back(hw);

  std::vector<Row> rows;
  std::printf(
      "decomposition build: naive 2*delta peels vs incremental "
      "nested-core chains (best of 3)\n");
  std::printf("%-5s %8s %8s %6s %10s %10s %8s %10s %10s %8s\n", "name", "n",
              "m", "delta", "naive", "incr_1t", "speedup", "arena_MB",
              "dense_MB", "ratio");
  for (const abcs::DatasetSpec& spec : SelectedDatasets()) {
    abcs::BipartiteGraph g;
    if (!abcs::MakeDataset(spec, &g).ok()) return 1;
    Row row;
    row.name = spec.name;
    row.n = g.NumVertices();
    row.m = g.NumEdges();

    // Cross-check once per dataset: the measured builds must be
    // bit-identical, or the speedup below is meaningless.
    const abcs::BicoreDecomposition naive =
        abcs::ComputeBicoreDecompositionNaive(g);
    if (!(abcs::ComputeBicoreDecomposition(g) == naive)) {
      std::fprintf(stderr, "%s: incremental != naive decomposition\n",
                   spec.name.c_str());
      return 1;
    }
    row.delta = naive.delta;
    row.arena_bytes = naive.MemoryBytes();
    row.dense_bytes = abcs::DenseDecompositionBytes(naive.delta, row.n);
    row.transient_bytes_1t = abcs::DecompositionBuildTransientBytes(row.n, 1);

    row.naive_seconds =
        TimeBest(3, [&] { abcs::ComputeBicoreDecompositionNaive(g); });
    for (unsigned t : thread_counts) {
      row.incremental.emplace_back(
          t, TimeBest(3, [&] {
            abcs::ComputeBicoreDecompositionParallel(g, t);
          }));
    }

    constexpr double kMb = 1024.0 * 1024.0;
    std::printf("%-5s %8u %8u %6u %10.4f %10.4f %7.2fx %10.2f %10.2f %7.2fx\n",
                row.name.c_str(), row.n, row.m, row.delta, row.naive_seconds,
                row.incremental[0].second,
                row.naive_seconds / row.incremental[0].second,
                static_cast<double>(row.arena_bytes) / kMb,
                static_cast<double>(row.dense_bytes) / kMb,
                static_cast<double>(row.dense_bytes) /
                    static_cast<double>(row.arena_bytes));
    rows.push_back(std::move(row));
  }

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"build_decomp\",\n");
  std::fprintf(out, "  \"hardware_threads\": %u,\n", hw);
  std::fprintf(out, "  \"datasets\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"n\": %u, \"m\": %u, \"delta\": "
                 "%u,\n     \"naive_seconds\": %.6f,\n     \"incremental\": [",
                 r.name.c_str(), r.n, r.m, r.delta, r.naive_seconds);
    for (std::size_t j = 0; j < r.incremental.size(); ++j) {
      std::fprintf(out, "%s{\"threads\": %u, \"seconds\": %.6f}",
                   j ? ", " : "", r.incremental[j].first,
                   r.incremental[j].second);
    }
    std::fprintf(out,
                 "],\n     \"speedup_1t\": %.3f,\n     "
                 "\"decomp_peak_bytes\": %zu, "
                 "\"dense_bytes\": %zu, \"build_transient_bytes_1t\": %zu, "
                 "\"compaction_ratio\": %.3f}%s\n",
                 r.naive_seconds / r.incremental[0].second, r.arena_bytes,
                 r.dense_bytes, r.transient_bytes_1t,
                 static_cast<double>(r.dense_bytes) /
                     static_cast<double>(r.arena_bytes),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return 0;
}
