// SCS kernel throughput: {peel, expand, binary, auto} × dataset × weight
// model (including duplicate-weight-heavy distributions, the regime the
// incremental SCS-Binary targets), plus the pre-incremental fresh-peel
// binary as the like-for-like baseline. Communities are retrieved once per
// query point; the timed loop runs only the extraction kernels through one
// pooled ScsWorkspace + QueryScratch, matching the query engine's
// steady-state discipline. Emits BENCH_scs.json.
//
// Per (dataset × weights) cell the summary reports
//   - binary_fresh_speedup: fresh-peel binary median / incremental median
//     (the headline: ≥2× expected on duplicate-heavy weights), and
//   - auto_vs_best: ScsAuto total time / best single-kernel total time
//     (planner overhead; ≤1.10 expected everywhere).
//
// Environment:
//   ABCS_BENCH_DATASETS  comma-separated registry names (default "BS")
//   ABCS_BENCH_QUERIES   queries per cell (default 100)
//   argv[1]              output JSON path (default BENCH_scs.json)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/delta_index.h"
#include "core/query_engine.h"
#include "core/scs_auto.h"
#include "core/scs_binary.h"
#include "graph/weights.h"

namespace {

struct WeightVariant {
  const char* name;
  abcs::WeightModel model;
  uint32_t quantise;  ///< 0 = continuous; else number of distinct values
};

// UF/SK are the paper's continuous models; DUP8/DUP2 quantise UF to 8 and
// 2 distinct values — duplicate-weight-heavy workloads where the rank
// prefix table has few entries and probe sharing pays most.
constexpr WeightVariant kVariants[] = {
    {"UF", abcs::WeightModel::kUniform, 0},
    {"SK", abcs::WeightModel::kSkewNormal, 0},
    {"DUP8", abcs::WeightModel::kUniform, 8},
    {"DUP2", abcs::WeightModel::kUniform, 2},
};

abcs::BipartiteGraph MakeVariantGraph(const abcs::BipartiteGraph& base,
                                      const WeightVariant& variant) {
  abcs::BipartiteGraph g = abcs::ApplyWeightModel(base, variant.model, 7);
  if (variant.quantise == 0) return g;
  abcs::Weight wmax = 0;
  for (abcs::EdgeId e = 0; e < g.NumEdges(); ++e) {
    wmax = std::max(wmax, g.GetWeight(e));
  }
  const double bucket = wmax / static_cast<double>(variant.quantise);
  std::vector<abcs::Weight> w(g.NumEdges());
  for (abcs::EdgeId e = 0; e < g.NumEdges(); ++e) {
    w[e] = std::max(1.0, std::ceil(g.GetWeight(e) / bucket));
  }
  return g.WithWeights(w);
}

struct CellRow {
  std::string dataset;
  std::string weights;
  uint32_t alpha = 0, beta = 0;
  std::string kernel;
  uint32_t queries = 0;
  double median_us = 0, mean_us = 0, total_s = 0;
  uint64_t validations = 0, incremental_probes = 0, edges_processed = 0;
};

double MedianUs(std::vector<double>& seconds) {
  if (seconds.empty()) return 0;
  std::sort(seconds.begin(), seconds.end());
  const std::size_t k = seconds.size();
  const double mid = (k % 2) ? seconds[k / 2]
                             : 0.5 * (seconds[k / 2 - 1] + seconds[k / 2]);
  return mid * 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const char* env = std::getenv("ABCS_BENCH_DATASETS");
  std::string datasets = env ? env : "BS";
  const char* out_path = argc > 1 ? argv[1] : "BENCH_scs.json";
  const uint32_t num_queries = abcs::bench::NumQueries();

  std::vector<CellRow> rows;
  struct CellSummary {
    std::string dataset, weights, best_kernel;
    double binary_fresh_speedup = 0, auto_vs_best = 0;
  };
  std::vector<CellSummary> summaries;

  for (std::size_t start = 0; start < datasets.size();) {
    std::size_t comma = datasets.find(',', start);
    if (comma == std::string::npos) comma = datasets.size();
    const std::string name = datasets.substr(start, comma - start);
    start = comma + 1;
    const abcs::DatasetSpec* spec = abcs::FindDataset(name);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown dataset %s\n", name.c_str());
      return 2;
    }
    const abcs::bench::PreparedDataset ds = abcs::bench::Prepare(*spec);
    const uint32_t t = abcs::bench::ScaledParam(ds.delta(), 0.7);
    const std::vector<abcs::VertexId> qs =
        abcs::bench::SampleCoreVertices(ds, t, t, num_queries, 4444);
    if (qs.empty()) {
      std::fprintf(stderr, "empty (%u,%u)-core on %s — skipping\n", t, t,
                   name.c_str());
      continue;
    }
    std::printf(
        "scs throughput on %s: n=%u |E|=%u δ=%u α=β=%u, %zu queries/cell\n",
        name.c_str(), ds.graph.NumVertices(), ds.graph.NumEdges(), ds.delta(),
        t, qs.size());
    std::printf("%-6s %-6s %-14s %12s %12s %12s %14s\n", "data", "wts",
                "kernel", "median(us)", "mean(us)", "total(s)", "probes+vals");

    for (const WeightVariant& variant : kVariants) {
      const abcs::BipartiteGraph g = MakeVariantGraph(ds.graph, variant);
      const abcs::DeltaIndex index = abcs::DeltaIndex::Build(g, &ds.decomp);
      // Retrieval is PR 2's story; fetch every community once up front so
      // the timed loops isolate the extraction kernels.
      std::vector<abcs::Subgraph> communities(qs.size());
      for (std::size_t i = 0; i < qs.size(); ++i) {
        communities[i] = index.QueryCommunity(qs[i], t, t);
      }

      struct Kernel {
        const char* name;
        abcs::ScsAlgo algo;   // meaningful unless fresh
        bool fresh = false;   // pre-incremental binary baseline
      };
      const Kernel kernels[] = {
          {"peel", abcs::ScsAlgo::kPeel},
          {"expand", abcs::ScsAlgo::kExpand},
          {"binary", abcs::ScsAlgo::kBinary},
          {"auto", abcs::ScsAlgo::kAuto},
          {"binary-fresh", abcs::ScsAlgo::kBinary, true},
      };
      double totals[5] = {0};
      double medians[5] = {0};
      for (std::size_t k = 0; k < 5; ++k) {
        const Kernel& kernel = kernels[k];
        abcs::QueryScratch scratch;
        abcs::ScsWorkspace ws;
        abcs::ScsResult out;
        abcs::ScsStats stats;
        std::vector<double> latencies(qs.size());
        // Warm-up pass grows the pooled buffers; timed pass is steady-state.
        for (int pass = 0; pass < 2; ++pass) {
          const bool timed = pass == 1;
          for (std::size_t i = 0; i < qs.size(); ++i) {
            abcs::Timer timer;
            if (kernel.fresh) {
              (void)abcs::ScsBinaryFreshPeel(g, communities[i], qs[i], t, t,
                                             timed ? &stats : nullptr);
            } else {
              abcs::ScsQueryInto(g, communities[i], qs[i], t, t, kernel.algo,
                                 {}, &out, timed ? &stats : nullptr, &scratch,
                                 &ws);
            }
            if (timed) latencies[i] = timer.Seconds();
          }
        }
        CellRow row;
        row.dataset = name;
        row.weights = variant.name;
        row.alpha = row.beta = t;
        row.kernel = kernel.name;
        row.queries = static_cast<uint32_t>(qs.size());
        for (double s : latencies) row.total_s += s;
        row.mean_us = row.total_s * 1e6 / static_cast<double>(qs.size());
        row.median_us = MedianUs(latencies);
        row.validations = stats.validations;
        row.incremental_probes = stats.incremental_probes;
        row.edges_processed = stats.edges_processed;
        totals[k] = row.total_s;
        medians[k] = row.median_us;
        rows.push_back(row);
        std::printf("%-6s %-6s %-14s %12.3f %12.3f %12.4f %14llu\n",
                    name.c_str(), variant.name, kernel.name, row.median_us,
                    row.mean_us, row.total_s,
                    static_cast<unsigned long long>(row.validations +
                                                    row.incremental_probes));
      }
      CellSummary summary;
      summary.dataset = name;
      summary.weights = variant.name;
      const std::size_t best =
          std::min_element(totals, totals + 3) - totals;  // single kernels
      summary.best_kernel = kernels[best].name;
      summary.auto_vs_best = totals[best] > 0 ? totals[3] / totals[best] : 0;
      summary.binary_fresh_speedup =
          medians[2] > 0 ? medians[4] / medians[2] : 0;
      summaries.push_back(summary);
      std::printf(
          "%-6s %-6s best=%s auto/best=%.3f binary-fresh/binary=%.2fx\n",
          name.c_str(), variant.name, summary.best_kernel.c_str(),
          summary.auto_vs_best, summary.binary_fresh_speedup);
    }
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"num_queries\": %u,\n  \"results\": [\n",
               num_queries);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CellRow& r = rows[i];
    std::fprintf(f,
                 "    {\"dataset\": \"%s\", \"weights\": \"%s\", "
                 "\"alpha\": %u, \"beta\": %u, \"kernel\": \"%s\", "
                 "\"queries\": %u, \"median_us\": %.3f, \"mean_us\": %.3f, "
                 "\"total_s\": %.6f, \"validations\": %llu, "
                 "\"incremental_probes\": %llu, \"edges_processed\": %llu}%s\n",
                 r.dataset.c_str(), r.weights.c_str(), r.alpha, r.beta,
                 r.kernel.c_str(), r.queries, r.median_us, r.mean_us,
                 r.total_s, static_cast<unsigned long long>(r.validations),
                 static_cast<unsigned long long>(r.incremental_probes),
                 static_cast<unsigned long long>(r.edges_processed),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"summaries\": [\n");
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const CellSummary& s = summaries[i];
    std::fprintf(f,
                 "    {\"dataset\": \"%s\", \"weights\": \"%s\", "
                 "\"best_kernel\": \"%s\", \"auto_vs_best\": %.4f, "
                 "\"binary_fresh_speedup\": %.4f}%s\n",
                 s.dataset.c_str(), s.weights.c_str(), s.best_kernel.c_str(),
                 s.auto_vs_best, s.binary_fresh_speedup,
                 i + 1 < summaries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
