// Figure 6: community quality on the MovieLens-like planted graph (comedy
// slice), varying α = β = t ∈ {45, 50, 55}.
//  (a) bipartite graph density d = |E|/sqrt(|U||L|), annotated with the
//      average rating;
//  (b) percentage of dislike users (users with < 0.6α ratings ≥ 4).
// Models: SC (significant community), (α,β)-core community, k-bitruss
// (k = α·β), maximal biclique around q, and C4* (movies with avg ≥ 4).
//
// Substitution note: the paper's biclique row uses an exact enumeration
// with a ≥45-per-layer constraint on MovieLens 25M; here the greedy
// maximal biclique targets the planted 50×50 dense core (falling back to
// an unconstrained maximal biclique if the ≥45 target is missed).

#include <cstdio>

#include "bench_common.h"
#include "core/delta_index.h"
#include "core/query_scratch.h"
#include "core/scs_peel.h"
#include "graph/generators.h"
#include "models/biclique.h"
#include "models/bitruss.h"
#include "models/cstar.h"
#include "models/metrics.h"

namespace {

struct Row {
  const char* model;
  abcs::Subgraph sub;
};

void Report(const abcs::BipartiteGraph& g, uint32_t t,
            const std::vector<Row>& rows) {
  std::printf("t = %u\n", t);
  std::printf("  %-12s %10s %8s %8s %10s %10s\n", "model", "density",
              "Ravg", "Rmin", "dislike%", "|E|");
  abcs::QueryScratch scratch;  // stamp-dedup'd stats across all rows
  for (const Row& row : rows) {
    if (row.sub.Empty()) {
      std::printf("  %-12s      (empty)\n", row.model);
      continue;
    }
    const abcs::SubgraphStats stats =
        abcs::ComputeStats(g, row.sub, &scratch);
    const uint32_t dislike = abcs::CountDislikeUsers(g, row.sub, t);
    const double pct =
        stats.num_upper == 0
            ? 0.0
            : 100.0 * static_cast<double>(dislike) / stats.num_upper;
    std::printf("  %-12s %10.2f %8.2f %8.1f %9.1f%% %10zu\n", row.model,
                abcs::BipartiteDensity(g, row.sub), stats.avg_weight,
                stats.min_weight, pct, row.sub.Size());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  abcs::PlantedSpec spec;  // defaults sized for t up to 55
  spec.seed = 20210416;
  abcs::PlantedGraph pg = abcs::MakePlantedCommunities(spec);
  abcs::PlantedGraph slice = abcs::ExtractGenreSlice(pg, /*genre=*/0);
  const abcs::BipartiteGraph& g = slice.graph;
  std::printf(
      "Figure 6: community quality on the comedy slice (%u users, %u "
      "movies, %u ratings)\n\n",
      g.NumUpper(), g.NumLower(), g.NumEdges());

  // q: first fan of comedy block 0.
  abcs::VertexId q = abcs::kInvalidVertex;
  for (uint32_t u = 0; u < g.NumUpper(); ++u) {
    if (slice.user_block[u] == 0) {
      q = u;
      break;
    }
  }
  if (q == abcs::kInvalidVertex) return 1;

  const abcs::DeltaIndex index = abcs::DeltaIndex::Build(g);
  const abcs::Subgraph cstar = abcs::QueryCStarCommunity(g, q, 4.0);

  for (uint32_t t : {45u, 50u, 55u}) {
    const abcs::Subgraph core = index.QueryCommunity(q, t, t);
    const abcs::ScsResult sc = abcs::ScsPeel(g, core, q, t, t);
    const abcs::Subgraph bitruss =
        abcs::QueryBitrussCommunity(g, q, static_cast<uint64_t>(t) * t);
    abcs::Subgraph biclique = abcs::QueryBicliqueCommunity(g, q, 45);
    if (biclique.Empty()) biclique = abcs::QueryBicliqueCommunity(g, q, 1);
    Report(g, t,
           {{"SC", sc.community},
            {"(a,b)-core", core},
            {"bitruss", bitruss},
            {"biclique", biclique},
            {"C4*", cstar}});
  }
  return 0;
}
