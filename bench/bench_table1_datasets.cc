// Table I: summary of datasets — |E|, |U|, |L|, δ, αmax, βmax, |R_{δ,δ}|.
// The numbers describe the scaled synthetic stand-ins (DESIGN.md §5); each
// row also cites the original KONECT statistics from the paper.

#include <cstdio>

#include "abcore/peeling.h"
#include "bench_common.h"

int main() {
  std::printf("Table I: summary of datasets (synthetic KONECT stand-ins)\n");
  std::printf("%-5s %9s %8s %8s %6s %7s %7s %9s   %s\n", "name", "|E|",
              "|U|", "|L|", "delta", "amax", "bmax", "|Rdd|", "paper");
  for (const abcs::DatasetSpec& spec : abcs::AllDatasets()) {
    const abcs::bench::PreparedDataset ds = abcs::bench::Prepare(spec);
    const abcs::BipartiteGraph& g = ds.graph;
    const uint32_t delta = ds.delta();
    const abcs::CoreResult rdd =
        abcs::ComputeAlphaBetaCore(g, delta, delta);
    std::printf("%-5s %9u %8u %8u %6u %7u %7u %9u   %s\n",
                spec.name.c_str(), g.NumEdges(), g.NumUpper(), g.NumLower(),
                delta, g.MaxUpperDegree(), g.MaxLowerDegree(),
                rdd.num_edges, spec.paper_note.c_str());
  }
  return 0;
}
