// Microbenchmarks (google-benchmark) for the library kernels: core
// decomposition, offset computation, index construction, community
// retrieval and the SCS kernels.

#include <benchmark/benchmark.h>

#include "abcore/degeneracy.h"
#include "abcore/offsets.h"
#include "abcore/peeling.h"
#include "bench_common.h"
#include "common/dsu.h"
#include "common/rng.h"
#include "core/delta_index.h"
#include "core/scs_expand.h"
#include "core/scs_peel.h"
#include "graph/generators.h"
#include "models/butterfly.h"

namespace {

const abcs::bench::PreparedDataset& Dataset() {
  static const abcs::bench::PreparedDataset* ds =
      new abcs::bench::PreparedDataset(
          abcs::bench::Prepare(*abcs::FindDataset("BS")));
  return *ds;
}

void BM_KCoreDecomposition(benchmark::State& state) {
  const abcs::BipartiteGraph& g = Dataset().graph;
  for (auto _ : state) {
    benchmark::DoNotOptimize(abcs::KCoreNumbers(g));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_KCoreDecomposition);

void BM_AlphaOffsets(benchmark::State& state) {
  const abcs::BipartiteGraph& g = Dataset().graph;
  const uint32_t alpha = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(abcs::ComputeAlphaOffsets(g, alpha));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_AlphaOffsets)->Arg(1)->Arg(4)->Arg(8);

void BM_AlphaBetaCorePeel(benchmark::State& state) {
  const abcs::BipartiteGraph& g = Dataset().graph;
  for (auto _ : state) {
    benchmark::DoNotOptimize(abcs::ComputeAlphaBetaCore(g, 4, 4));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_AlphaBetaCorePeel);

void BM_DeltaIndexBuild(benchmark::State& state) {
  const abcs::bench::PreparedDataset& ds = Dataset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        abcs::DeltaIndex::Build(ds.graph, &ds.decomp));
  }
}
BENCHMARK(BM_DeltaIndexBuild);

void BM_QoptQuery(benchmark::State& state) {
  const abcs::bench::PreparedDataset& ds = Dataset();
  static const abcs::DeltaIndex* index =
      new abcs::DeltaIndex(abcs::DeltaIndex::Build(ds.graph, &ds.decomp));
  const uint32_t t = abcs::bench::ScaledParam(ds.delta(), 0.7);
  const std::vector<abcs::VertexId> qs =
      abcs::bench::SampleCoreVertices(ds, t, t, 64, 1);
  if (qs.empty()) {
    state.SkipWithError("empty core");
    return;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index->QueryCommunity(qs[i++ % qs.size()], t, t));
  }
}
BENCHMARK(BM_QoptQuery);

void BM_ScsPeelKernel(benchmark::State& state) {
  const abcs::bench::PreparedDataset& ds = Dataset();
  static const abcs::DeltaIndex* index =
      new abcs::DeltaIndex(abcs::DeltaIndex::Build(ds.graph, &ds.decomp));
  const uint32_t t = abcs::bench::ScaledParam(ds.delta(), 0.7);
  const std::vector<abcs::VertexId> qs =
      abcs::bench::SampleCoreVertices(ds, t, t, 16, 2);
  if (qs.empty()) {
    state.SkipWithError("empty core");
    return;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const abcs::VertexId q = qs[i++ % qs.size()];
    const abcs::Subgraph c = index->QueryCommunity(q, t, t);
    benchmark::DoNotOptimize(abcs::ScsPeel(ds.graph, c, q, t, t));
  }
}
BENCHMARK(BM_ScsPeelKernel);

void BM_ScsExpandKernel(benchmark::State& state) {
  const abcs::bench::PreparedDataset& ds = Dataset();
  static const abcs::DeltaIndex* index =
      new abcs::DeltaIndex(abcs::DeltaIndex::Build(ds.graph, &ds.decomp));
  const uint32_t t = abcs::bench::ScaledParam(ds.delta(), 0.7);
  const std::vector<abcs::VertexId> qs =
      abcs::bench::SampleCoreVertices(ds, t, t, 16, 2);
  if (qs.empty()) {
    state.SkipWithError("empty core");
    return;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const abcs::VertexId q = qs[i++ % qs.size()];
    const abcs::Subgraph c = index->QueryCommunity(q, t, t);
    benchmark::DoNotOptimize(abcs::ScsExpand(ds.graph, c, q, t, t));
  }
}
BENCHMARK(BM_ScsExpandKernel);

void BM_DsuUnionFind(benchmark::State& state) {
  const uint32_t n = 100000;
  abcs::Rng rng(7);
  std::vector<std::pair<uint32_t, uint32_t>> ops(n);
  for (auto& op : ops) {
    op = {static_cast<uint32_t>(rng.NextBounded(n)),
          static_cast<uint32_t>(rng.NextBounded(n))};
  }
  for (auto _ : state) {
    abcs::Dsu dsu(n);
    for (const auto& [a, b] : ops) dsu.Union(a, b);
    benchmark::DoNotOptimize(dsu.num_sets());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DsuUnionFind);

void BM_ButterflyCounting(benchmark::State& state) {
  abcs::BipartiteGraph g;
  if (!abcs::GenErdosRenyiBipartite(500, 500, 5000, 3, &g).ok()) {
    state.SkipWithError("gen failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(abcs::CountButterfliesPerEdge(g));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_ButterflyCounting);

}  // namespace
