// Figure 8: retrieving the (α,β)-community — Qo (online) vs Qv (bicore
// index I_v) vs Qopt (degeneracy-bounded index I_δ) on all datasets with
// α = β = 0.7δ, averaged over random query vertices from the core.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/bicore_index.h"
#include "core/delta_index.h"
#include "core/online_query.h"
#include "core/query_scratch.h"

int main() {
  using abcs::bench::PreparedDataset;
  const uint32_t queries = abcs::bench::NumQueries();
  std::printf(
      "Figure 8: (α,β)-community retrieval, α=β=0.7δ, avg over %u "
      "queries (seconds)\n",
      queries);
  std::printf("%-5s %6s %10s %12s %12s %12s %10s %12s\n", "name", "a=b",
              "avg|C|", "Qo", "Qv", "Qopt", "Qo/Qopt", "arcsQv/Qopt");

  for (const abcs::DatasetSpec& spec : abcs::AllDatasets()) {
    const PreparedDataset ds = abcs::bench::Prepare(spec);
    const uint32_t t = abcs::bench::ScaledParam(ds.delta(), 0.7);
    const abcs::BicoreIndex iv =
        abcs::BicoreIndex::Build(ds.graph, &ds.decomp);
    const abcs::DeltaIndex idelta =
        abcs::DeltaIndex::Build(ds.graph, &ds.decomp);
    const std::vector<abcs::VertexId> qs =
        abcs::bench::SampleCoreVertices(ds, t, t, queries, 1234);
    if (qs.empty()) {
      std::printf("%-5s %6u  (empty core)\n", spec.name.c_str(), t);
      continue;
    }

    double online_s = 0, bicore_s = 0, opt_s = 0;
    std::size_t total_size = 0;
    abcs::QueryStats qv_stats, qopt_stats;
    abcs::QueryScratch scratch;
    abcs::Subgraph c0, c1, c2;
    for (abcs::VertexId q : qs) {
      abcs::Timer timer;
      abcs::QueryCommunityOnline(ds.graph, q, t, t, scratch, &c0);
      online_s += timer.Seconds();
      timer.Reset();
      iv.QueryCommunity(q, t, t, scratch, &c1, &qv_stats);
      bicore_s += timer.Seconds();
      timer.Reset();
      idelta.QueryCommunity(q, t, t, scratch, &c2, &qopt_stats);
      opt_s += timer.Seconds();
      total_size += c2.Size();
      if (!abcs::SameEdgeSet(c0, c2) || !abcs::SameEdgeSet(c1, c2)) {
        std::fprintf(stderr, "MISMATCH on %s q=%u\n", spec.name.c_str(), q);
        return 1;
      }
    }
    const double n = static_cast<double>(qs.size());
    std::printf("%-5s %6u %10.0f %12.3e %12.3e %12.3e %9.1fx %11.2fx\n",
                spec.name.c_str(), t, static_cast<double>(total_size) / n,
                online_s / n, bicore_s / n, opt_s / n,
                online_s / (opt_s > 0 ? opt_s : 1e-12),
                static_cast<double>(qv_stats.touched_arcs) /
                    static_cast<double>(
                        std::max<uint64_t>(1, qopt_stats.touched_arcs)));
  }
  return 0;
}
