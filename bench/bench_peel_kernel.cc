// Unified peeling-kernel benchmark: single-peel throughput of the shared
// bucket-queue kernel (abcore/peel_kernel.h) across its entry points, plus
// serial vs multi-threaded whole-grid offset decomposition — the index-build
// hot path — with a thread-scaling sweep on the largest registry dataset.
//
// ABCS_BENCH_DATASET overrides the dataset (default: DTI, the largest).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "abcore/degeneracy.h"
#include "abcore/offsets.h"
#include "abcore/peel_kernel.h"
#include "abcore/peeling.h"
#include "bench_common.h"
#include "common/timer.h"

namespace {

double TimeBest(int reps, const auto& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    abcs::Timer timer;
    fn();
    best = std::min(best, timer.Seconds());
  }
  return best;
}

}  // namespace

int main() {
  const char* name_env = std::getenv("ABCS_BENCH_DATASET");
  const std::string name = name_env ? name_env : "DTI";
  const abcs::DatasetSpec* spec = abcs::FindDataset(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown dataset %s\n", name.c_str());
    return 1;
  }
  abcs::BipartiteGraph g;
  if (!abcs::MakeDataset(*spec, &g).ok()) return 1;
  const double m = static_cast<double>(g.NumEdges());

  const uint32_t delta = abcs::Degeneracy(g);
  std::printf("peel kernel on %s: |E|=%u |U|=%u |L|=%u delta=%u\n",
              spec->name.c_str(), g.NumEdges(), g.NumUpper(), g.NumLower(),
              delta);

  // Unpacked vs bit-packed degree form of the same threshold peel: the
  // packed kernel's working set is width/32 of the u32 array, which is the
  // whole contest — same arcs touched, smaller random-access footprint.
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> base_deg(n);
  uint32_t max_deg = 0;
  for (abcs::VertexId v = 0; v < n; ++v) {
    base_deg[v] = g.Degree(v);
    max_deg = std::max(max_deg, base_deg[v]);
  }
  const auto threshold = [](abcs::VertexId) { return 2u; };
  const double unpacked_22 = TimeBest(3, [&] {
    std::vector<uint32_t> deg = base_deg;
    std::vector<uint8_t> alive(n, 1);
    abcs::ThresholdPeel(n, deg, alive, abcs::GraphNeighbors(g), threshold,
                        [](abcs::VertexId) {});
  });
  abcs::PackedU32Array packed_template;
  packed_template.Assign(base_deg.data(), n);
  const double packed_22 = TimeBest(3, [&] {
    abcs::PackedU32Array deg = packed_template;
    std::vector<uint8_t> alive(n, 1);
    abcs::ThresholdPeelPacked(n, deg, alive, abcs::GraphNeighbors(g),
                              threshold, [](abcs::VertexId) {});
  });

  std::printf("\nsingle peels (best of 3)\n%-28s %10s %12s\n", "kernel",
              "seconds", "Medges/s");
  const struct {
    const char* label;
    double seconds;
  } rows[] = {
      {"ThresholdPeel (2,2)-core",
       TimeBest(3, [&] { abcs::ComputeAlphaBetaCore(g, 2, 2); })},
      {"ThresholdPeel raw (2,2)", unpacked_22},
      {"ThresholdPeelPacked (2,2)", packed_22},
      {"LevelPeeler alpha-offsets",
       TimeBest(3, [&] { abcs::ComputeAlphaOffsets(g, 2); })},
      {"LevelPeeler beta-offsets",
       TimeBest(3, [&] { abcs::ComputeBetaOffsets(g, 2); })},
      {"LevelPeeler k-core numbers",
       TimeBest(3, [&] { abcs::KCoreNumbers(g); })},
  };
  for (const auto& row : rows) {
    std::printf("%-28s %10.4f %12.1f\n", row.label, row.seconds,
                m / row.seconds / 1e6);
  }
  std::printf(
      "packed degree form: %u-bit lanes, %.1f%% of the u32 array footprint, "
      "%5.2fx vs raw peel\n",
      packed_template.width(),
      100.0 * packed_template.MemoryBytes() / (n * sizeof(uint32_t)),
      packed_22 > 0 ? unpacked_22 / packed_22 : 0.0);

  std::printf(
      "\nwhole-grid decomposition (incremental nested-core chains over "
      "delta = %u levels/side, best of 3)\n",
      delta);
  std::printf("%-10s %10s %10s\n", "threads", "seconds", "speedup");
  const double serial =
      TimeBest(3, [&] { abcs::ComputeBicoreDecomposition(g); });
  std::printf("%-10s %10.3f %10s\n", "serial", serial, "1.00x");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (unsigned t = 1; t <= hw; t *= 2) {
    const double s = TimeBest(
        3, [&] { abcs::ComputeBicoreDecompositionParallel(g, t); });
    std::printf("%-10u %10.3f %9.2fx\n", t, s, serial / s);
  }
  if ((hw & (hw - 1)) != 0) {  // hw not a power of two: add the full-width row
    const double s = TimeBest(
        3, [&] { abcs::ComputeBicoreDecompositionParallel(g, hw); });
    std::printf("%-10u %10.3f %9.2fx\n", hw, s, serial / s);
  }
  return 0;
}
