// Figure 10: index construction time for I_v, Iα_bs, Iβ_bs and I_δ.
// As in the paper, basic-index builds that exceed the time budget are
// reported as DNF (the paper's limit is 10⁴ s on a server; ours is scaled
// to the synthetic dataset sizes and overridable via ABCS_BENCH_BUDGET_S).

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_common.h"
#include "common/timer.h"
#include "core/basic_index.h"
#include "core/bicore_index.h"
#include "core/delta_index.h"

namespace {

double BudgetSeconds() {
  if (const char* env = std::getenv("ABCS_BENCH_BUDGET_S")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return 5.0;
}

}  // namespace

int main() {
  const double budget = BudgetSeconds();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf(
      "Figure 10: index construction time (seconds; DNF = exceeded %.0fs "
      "budget; IdeltaMT = %u-thread offset grid)\n",
      budget, hw);
  std::printf("%-5s %10s %12s %12s %10s %10s %8s\n", "name", "Iv", "Ia_bs",
              "Ib_bs", "Idelta", "IdeltaMT", "speedup");
  for (const abcs::DatasetSpec& spec : abcs::AllDatasets()) {
    abcs::BipartiteGraph g;
    if (!abcs::MakeDataset(spec, &g).ok()) return 1;

    // Each build is timed end to end, including its own offset
    // decomposition (nothing shared), matching the paper's methodology.
    abcs::Timer timer;
    const abcs::BicoreIndex iv = abcs::BicoreIndex::Build(g);
    const double iv_s = timer.Seconds();

    abcs::BasicIndexBuildOptions options;
    options.max_seconds = budget;
    char ia_buf[32], ib_buf[32];
    {
      abcs::BasicIndex ia;
      timer.Reset();
      const abcs::Status st =
          abcs::BasicIndex::Build(g, abcs::BasicIndexSide::kAlpha, options,
                                  &ia);
      if (st.ok()) {
        std::snprintf(ia_buf, sizeof(ia_buf), "%.3f", timer.Seconds());
      } else {
        std::snprintf(ia_buf, sizeof(ia_buf), "DNF");
      }
    }
    {
      abcs::BasicIndex ib;
      timer.Reset();
      const abcs::Status st = abcs::BasicIndex::Build(
          g, abcs::BasicIndexSide::kBeta, options, &ib);
      if (st.ok()) {
        std::snprintf(ib_buf, sizeof(ib_buf), "%.3f", timer.Seconds());
      } else {
        std::snprintf(ib_buf, sizeof(ib_buf), "DNF");
      }
    }

    timer.Reset();
    const abcs::DeltaIndex idelta = abcs::DeltaIndex::Build(g);
    const double idelta_s = timer.Seconds();

    timer.Reset();
    const abcs::DeltaIndex idelta_mt =
        abcs::DeltaIndex::Build(g, nullptr, /*num_threads=*/0);
    const double idelta_mt_s = timer.Seconds();

    std::printf("%-5s %10.3f %12s %12s %10.3f %10.3f %7.2fx\n",
                spec.name.c_str(), iv_s, ia_buf, ib_buf, idelta_s,
                idelta_mt_s, idelta_s / idelta_mt_s);
    (void)iv;
    (void)idelta;
    (void)idelta_mt;
  }
  return 0;
}
