// Sustained-load serving benchmark: open-loop arrivals through the
// daemon's TaskScheduler, A/B-ing round-robin dispatch (the pre-serve
// QueryEngine stripe, which pins each connection's requests to one
// worker) against work stealing. The workload mixes ~86% cheap
// delta-index retrievals with ~14% expensive online queries — the
// regime behind the BENCH_query online p99 cliff (p50 0.78 ms vs p99
// 12.8 ms at 4 threads): under round-robin one in-flight online query
// stalls every request striped behind it, while stealing drains the
// blocked queue on idle workers.
//
// Open loop: arrival times are precomputed (exponential inter-arrivals,
// seeded), a producer pushes each request at its scheduled instant, and
// latency is measured completion − *scheduled* arrival — so queueing
// delay is charged to the server, not silently absorbed by a
// coordinated-omission closed loop. The offered rate is 70% of the
// measured closed-loop capacity at each thread count (identical for
// both modes, so the A/B is apples to apples).
//
// Emits BENCH_serve.json with one row per mode × thread count and the
// headline ws/rr p99 ratio at 4 threads.
//
// Environment:
//   ABCS_BENCH_DATASET        registry dataset (default BS)
//   ABCS_BENCH_SERVE_SECONDS  open-loop duration per config (default 2)
//   argv[1]                   output JSON path (default BENCH_serve.json)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/delta_index.h"
#include "core/query_engine.h"
#include "serve/scheduler.h"

namespace {

using Clock = std::chrono::steady_clock;

// ~1 in 7 requests runs the index-free online method; the rest hit I_δ.
constexpr std::size_t kOnlineStride = 7;
// Simulated client connections; the scheduler hint pins a stream to one
// worker exactly like the daemon's per-connection affinity.
constexpr unsigned kStreams = 16;

struct Workload {
  std::vector<abcs::QueryRequest> requests;
  std::vector<bool> online;  ///< per-request method flag
};

struct RunResult {
  double offered_qps = 0;
  double achieved_qps = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
};

double Quantile(std::vector<double>& xs, double q) {
  if (xs.empty()) return 0;
  const std::size_t k = static_cast<std::size_t>(
      q * static_cast<double>(xs.size() - 1) + 0.5);
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(k),
                   xs.end());
  return xs[k];
}

Workload MakeWorkload(const abcs::bench::PreparedDataset& ds, uint32_t alpha,
                      uint32_t beta, std::size_t count) {
  const std::vector<abcs::VertexId> qs =
      abcs::bench::SampleCoreVertices(ds, alpha, beta, 64, 4321);
  Workload w;
  if (qs.empty()) return w;
  w.requests.resize(count);
  w.online.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    w.requests[i] = abcs::QueryRequest{qs[i % qs.size()], alpha, beta};
    w.online[i] = (i % kOnlineStride) == 0;
  }
  return w;
}

/// Executes workload item `i` into worker-local scratch.
struct Workers {
  const abcs::QueryEngine* delta_engine;
  const abcs::QueryEngine* online_engine;
  const Workload* workload;

  struct State {
    abcs::QueryScratch scratch;
    abcs::Subgraph out;
  };
  std::vector<std::unique_ptr<State>> states;

  explicit Workers(unsigned n) : states(n) {
    for (auto& s : states) s = std::make_unique<State>();
  }

  void Run(unsigned t, std::size_t i) {
    State& s = *states[t];
    const abcs::QueryEngine* engine =
        (*workload).online[i] ? online_engine : delta_engine;
    engine->Query((*workload).requests[i], s.scratch, &s.out);
  }
};

/// Closed-loop capacity: every request queued upfront, `threads` workers
/// drain through the scheduler. Returns completed queries per second.
double MeasureCapacity(Workers& workers, unsigned threads, std::size_t n) {
  abcs::serve::TaskScheduler<uint32_t> sched(threads, n + 1,
                                             abcs::serve::StealMode::
                                                 kWorkStealing);
  for (std::size_t i = 0; i < n; ++i) {
    sched.Push(static_cast<uint32_t>(i),
               static_cast<unsigned>(i % kStreams));
  }
  sched.Close();
  abcs::Timer timer;
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      uint32_t i;
      while (sched.Pop(t, &i)) workers.Run(t, i);
    });
  }
  for (std::thread& th : pool) th.join();
  const double secs = timer.Seconds();
  return secs > 0 ? static_cast<double>(n) / secs : 0;
}

RunResult RunOpenLoop(Workers& workers, unsigned threads,
                      abcs::serve::StealMode mode, double offered_qps,
                      double seconds) {
  const std::size_t n = std::max<std::size_t>(
      200, static_cast<std::size_t>(offered_qps * seconds));
  // Precomputed exponential arrivals: the offered process is fixed before
  // the run starts, so producer jitter cannot throttle it.
  std::mt19937_64 rng(2024);
  std::exponential_distribution<double> exp_dist(offered_qps);
  std::vector<double> arrival_s(n);
  double at = 0;
  for (std::size_t i = 0; i < n; ++i) {
    at += exp_dist(rng);
    arrival_s[i] = at;
  }

  abcs::serve::TaskScheduler<uint32_t> sched(threads, n + 1, mode);
  std::vector<double> latency_us(n, 0.0);
  const Clock::time_point start = Clock::now();

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      uint32_t i;
      while (sched.Pop(t, &i)) {
        workers.Run(t, i);
        const double done_s =
            std::chrono::duration<double>(Clock::now() - start).count();
        latency_us[i] = (done_s - arrival_s[i]) * 1e6;
      }
    });
  }

  for (std::size_t i = 0; i < n; ++i) {
    const auto deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(arrival_s[i]));
    std::this_thread::sleep_until(deadline);
    sched.Push(static_cast<uint32_t>(i), static_cast<unsigned>(i % kStreams));
  }
  sched.Close();
  for (std::thread& th : pool) th.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  RunResult r;
  r.offered_qps = offered_qps;
  r.achieved_qps = wall_s > 0 ? static_cast<double>(n) / wall_s : 0;
  std::vector<double> sorted = latency_us;
  r.p50_us = Quantile(sorted, 0.50);
  r.p99_us = Quantile(sorted, 0.99);
  r.p999_us = Quantile(sorted, 0.999);
  return r;
}

struct Row {
  const char* mode;
  unsigned threads;
  RunResult run;
};

}  // namespace

int main(int argc, char** argv) {
  const char* dataset_env = std::getenv("ABCS_BENCH_DATASET");
  const std::string dataset = dataset_env ? dataset_env : "BS";
  const char* seconds_env = std::getenv("ABCS_BENCH_SERVE_SECONDS");
  const double seconds = seconds_env ? std::atof(seconds_env) : 2.0;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_serve.json";

  const abcs::DatasetSpec* spec = abcs::FindDataset(dataset);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown dataset %s\n", dataset.c_str());
    return 2;
  }
  const abcs::bench::PreparedDataset ds = abcs::bench::Prepare(*spec);
  const abcs::DeltaIndex delta = abcs::DeltaIndex::Build(ds.graph, &ds.decomp);

  const uint32_t alpha = abcs::bench::ScaledParam(ds.delta(), 0.7);
  const uint32_t beta = alpha;
  const Workload workload = MakeWorkload(ds, alpha, beta, 1u << 20);
  if (workload.requests.empty()) {
    std::fprintf(stderr, "empty (%u,%u)-core on %s\n", alpha, beta,
                 dataset.c_str());
    return 2;
  }

  const abcs::QueryEngine delta_engine(ds.graph, abcs::QueryMethod::kDelta,
                                       &delta);
  const abcs::QueryEngine online_engine(ds.graph, abcs::QueryMethod::kOnline);

  std::printf("serve sustained-load on %s: |E|=%u δ=%u (α,β)=(%u,%u), "
              "%.1fs/config, 1/%zu online\n",
              dataset.c_str(), ds.graph.NumEdges(), ds.delta(), alpha, beta,
              seconds, kOnlineStride);
  std::printf("%-12s %8s %12s %12s %10s %10s %10s\n", "mode", "threads",
              "offered", "achieved", "p50(us)", "p99(us)", "p999(us)");

  std::vector<Row> rows;
  for (const unsigned threads : {1u, 2u, 4u}) {
    Workers workers(threads);
    workers.delta_engine = &delta_engine;
    workers.online_engine = &online_engine;
    workers.workload = &workload;

    const std::size_t warm = 2000;
    (void)MeasureCapacity(workers, threads, warm);  // warm caches
    const double capacity = MeasureCapacity(workers, threads, 4000);
    const double offered = 0.7 * capacity;

    for (const abcs::serve::StealMode mode :
         {abcs::serve::StealMode::kRoundRobin,
          abcs::serve::StealMode::kWorkStealing}) {
      const char* name =
          mode == abcs::serve::StealMode::kRoundRobin ? "round_robin"
                                                      : "work_steal";
      const RunResult run = RunOpenLoop(workers, threads, mode, offered,
                                        seconds);
      rows.push_back(Row{name, threads, run});
      std::printf("%-12s %8u %12.1f %12.1f %10.1f %10.1f %10.1f\n", name,
                  threads, run.offered_qps, run.achieved_qps, run.p50_us,
                  run.p99_us, run.p999_us);
    }
  }

  double rr_p99_4t = 0, ws_p99_4t = 0;
  for (const Row& row : rows) {
    if (row.threads == 4) {
      if (std::string(row.mode) == "round_robin") rr_p99_4t = row.run.p99_us;
      if (std::string(row.mode) == "work_steal") ws_p99_4t = row.run.p99_us;
    }
  }
  const double ratio = rr_p99_4t > 0 ? ws_p99_4t / rr_p99_4t : 0;
  std::printf("work_steal/round_robin p99 at 4 threads: %.3f\n", ratio);

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"dataset\": \"%s\",\n  \"num_edges\": %u,\n"
               "  \"delta\": %u,\n  \"alpha\": %u,\n  \"beta\": %u,\n"
               "  \"seconds_per_config\": %.2f,\n  \"results\": [\n",
               dataset.c_str(), ds.graph.NumEdges(), ds.delta(), alpha, beta,
               seconds);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"threads\": %u, "
                 "\"offered_qps\": %.1f, \"achieved_qps\": %.1f, "
                 "\"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f}%s\n",
                 row.mode, row.threads, row.run.offered_qps,
                 row.run.achieved_qps, row.run.p50_us, row.run.p99_us,
                 row.run.p999_us, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"ws_over_rr_p99_at_4t\": %.4f\n}\n", ratio);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
