#ifndef ABCS_BENCH_BENCH_COMMON_H_
#define ABCS_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "abcore/offsets.h"
#include "graph/datasets.h"

namespace abcs::bench {

/// A dataset materialised for benchmarking: graph plus the δ-bounded
/// offset decomposition shared by the index builds.
struct PreparedDataset {
  DatasetSpec spec;
  BipartiteGraph graph;
  BicoreDecomposition decomp;

  uint32_t delta() const { return decomp.delta; }
};

/// Generates the dataset and computes its decomposition. Deterministic.
PreparedDataset Prepare(const DatasetSpec& spec);

/// Samples up to `count` distinct vertices belonging to the (α,β)-core
/// (query vertices with nonempty communities, as the paper's random
/// queries). Deterministic for a given seed.
std::vector<VertexId> SampleCoreVertices(const PreparedDataset& ds,
                                         uint32_t alpha, uint32_t beta,
                                         uint32_t count, uint64_t seed);

/// α = β = round(c·δ), clamped to ≥ 1.
uint32_t ScaledParam(uint32_t delta, double c);

double Mean(const std::vector<double>& xs);
double StdDev(const std::vector<double>& xs);

/// Number of query repetitions; honours the ABCS_BENCH_QUERIES environment
/// variable (default 100, the paper's setting).
uint32_t NumQueries();

}  // namespace abcs::bench

#endif  // ABCS_BENCH_BENCH_COMMON_H_
