// Figure 13: effect of α and β on the SCS algorithms, on DT-like and
// ML-like datasets.
//  (a): DT, α = β = c·δ      (b): ML, α = β = c·δ
//  (c): DT, α = c·δ, β = 0.5δ (d): ML, α = 0.5δ, β = c·δ

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/delta_index.h"
#include "core/scs_baseline.h"
#include "core/scs_expand.h"
#include "core/scs_peel.h"

namespace {

void RunSeries(const abcs::bench::PreparedDataset& ds, const char* label,
               bool vary_both, bool vary_beta) {
  // The baseline is slow at small α,β; cap repetitions for this figure.
  const uint32_t queries = std::min<uint32_t>(abcs::bench::NumQueries(), 25);
  const abcs::DeltaIndex index =
      abcs::DeltaIndex::Build(ds.graph, &ds.decomp);
  std::printf("%s (avg over up to %u queries, seconds)\n", label, queries);
  std::printf("%5s %6s %6s %12s %12s %12s\n", "c", "alpha", "beta",
              "baseline", "peel", "expand");
  for (double c = 0.1; c <= 0.91; c += 0.1) {
    uint32_t alpha, beta;
    if (vary_both) {
      alpha = beta = abcs::bench::ScaledParam(ds.delta(), c);
    } else if (vary_beta) {
      alpha = abcs::bench::ScaledParam(ds.delta(), 0.5);
      beta = abcs::bench::ScaledParam(ds.delta(), c);
    } else {
      alpha = abcs::bench::ScaledParam(ds.delta(), c);
      beta = abcs::bench::ScaledParam(ds.delta(), 0.5);
    }
    const std::vector<abcs::VertexId> qs =
        abcs::bench::SampleCoreVertices(ds, alpha, beta, queries, 555);
    if (qs.empty()) {
      std::printf("%5.1f %6u %6u   (empty core)\n", c, alpha, beta);
      continue;
    }
    double base_s = 0, peel_s = 0, expand_s = 0;
    for (abcs::VertexId q : qs) {
      abcs::Timer timer;
      (void)abcs::ScsBaseline(ds.graph, q, alpha, beta);
      base_s += timer.Seconds();
      timer.Reset();
      const abcs::Subgraph c1 = index.QueryCommunity(q, alpha, beta);
      (void)abcs::ScsPeel(ds.graph, c1, q, alpha, beta);
      peel_s += timer.Seconds();
      timer.Reset();
      const abcs::Subgraph c2 = index.QueryCommunity(q, alpha, beta);
      (void)abcs::ScsExpand(ds.graph, c2, q, alpha, beta);
      expand_s += timer.Seconds();
    }
    const double n = static_cast<double>(qs.size());
    std::printf("%5.1f %6u %6u %12.3e %12.3e %12.3e\n", c, alpha, beta,
                base_s / n, peel_s / n, expand_s / n);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const abcs::bench::PreparedDataset dt =
      abcs::bench::Prepare(*abcs::FindDataset("DT"));
  const abcs::bench::PreparedDataset ml =
      abcs::bench::Prepare(*abcs::FindDataset("ML"));
  RunSeries(dt, "Figure 13(a): DT, alpha=beta=c*delta", true, false);
  RunSeries(ml, "Figure 13(b): ML, alpha=beta=c*delta", true, false);
  RunSeries(dt, "Figure 13(c): DT, alpha=c*delta, beta=0.5*delta", false,
            false);
  RunSeries(ml, "Figure 13(d): ML, alpha=0.5*delta, beta=c*delta", false,
            true);
  return 0;
}
