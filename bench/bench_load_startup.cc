// Startup-latency benchmark: time-to-first-query of a cold index build vs
// reopening a persisted ABCSPAK2 bundle (legacy ABCSIDX load, read-mode
// open, mmap open — verified and unverified), at every compression level
// (none / fast / max). This is the restart story the bundle format exists
// for: the O(δ·m) construction cost is paid once at save time, and every
// process start afterwards is an O(file) open (or O(1) copies + lazy page
// faults for unverified mmap); compressed rows additionally report the
// encode cost, the raw-vs-compressed byte ratio and the decode-to-first-
// query time. Emits BENCH_load.json (rows keyed dataset × compression,
// with bundle_bytes / compression_ratio checked warn-only against the
// committed baseline) for the CI bench-smoke artifact.
//
// Usage: bench_load_startup [out.json]
// ABCS_BENCH_DATASETS / ABCS_BENCH_DATASET: registry names (default BS),
// or "XL" — the million-vertex synthetic graph shared with
// bench_query_throughput, where restart latency is the real regime.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/bicore_index.h"
#include "core/delta_index.h"
#include "core/index_io.h"
#include "core/subgraph.h"
#include "io/index_bundle.h"

namespace {

double TimeBest(int reps, const auto& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    abcs::Timer timer;
    fn();
    best = std::min(best, timer.Seconds());
  }
  return best;
}

// Million-vertex restart dataset (same spec as bench_query_throughput's
// bench-local XL; not in the Table I registry).
abcs::DatasetSpec XlSpec() {
  abcs::DatasetSpec spec;
  spec.name = "XL";
  spec.num_upper = 400000;
  spec.num_lower = 600000;
  spec.num_edges = 1500000;
  spec.skew_upper = 2.3;
  spec.skew_lower = 2.3;
  spec.weights = abcs::WeightModel::kUniform;
  spec.seed = 777;
  spec.paper_note = "synthetic startup-latency dataset (not in Table I)";
  return spec;
}

std::vector<abcs::DatasetSpec> SelectedDatasets() {
  const char* env = std::getenv("ABCS_BENCH_DATASETS");
  if (env == nullptr || *env == '\0') env = std::getenv("ABCS_BENCH_DATASET");
  const std::string list = (env == nullptr || *env == '\0') ? "BS" : env;
  std::vector<abcs::DatasetSpec> out;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string name =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (const abcs::DatasetSpec* spec = abcs::FindDataset(name)) {
      out.push_back(*spec);
    } else if (name == "XL") {
      out.push_back(XlSpec());
    } else if (!name.empty()) {
      std::fprintf(stderr, "unknown dataset %s\n", name.c_str());
      std::exit(1);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

struct Row {
  std::string name;
  std::string compression;  ///< "none" / "fast" / "max"
  uint32_t n = 0, m = 0, delta = 0;
  std::size_t bundle_bytes = 0;
  double compression_ratio = 1.0;  ///< raw bundle bytes / this bundle bytes
  double save_seconds = 0;    ///< encode (at this level) + crash-safe write
  double cold_build_1t = 0;   ///< serial decomposition + I_δ + first query
  double cold_build_mt = 0;   ///< all-cores decomposition + I_δ + query
  double legacy_load = 0;     ///< ABCSIDX LoadDeltaIndex + first query
  double open_read = 0;       ///< bundle kRead open (+decode) + first query
  double open_mmap = 0;       ///< bundle kMmap open (+decode) + first query
  double open_mmap_unverified = 0;  ///< mmap open, checksums skipped
};

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_load.json";
  const std::vector<abcs::DatasetSpec> specs = SelectedDatasets();

  std::printf("%-5s %-5s %8s %8s %6s %9s %7s %9s %10s %10s %10s %10s %8s\n",
              "name", "comp", "n", "m", "delta", "MB", "ratio", "save",
              "buildMT", "legacy", "read", "mmap", "speedup");
  std::vector<Row> rows;
  for (const abcs::DatasetSpec& spec : specs) {
    const abcs::bench::PreparedDataset ds = abcs::bench::Prepare(spec);
    const abcs::BipartiteGraph& g = ds.graph;

    // Time-to-first-query probe: one typical-point community retrieval,
    // identical on every path (and checked identical below).
    const uint32_t ab = abcs::bench::ScaledParam(ds.delta(), 0.7);
    const std::vector<abcs::VertexId> qs =
        abcs::bench::SampleCoreVertices(ds, ab, ab, 1, 99);
    const abcs::VertexId q = qs.empty() ? 0 : qs[0];

    const abcs::DeltaIndex built = abcs::DeltaIndex::Build(g, &ds.decomp);
    const abcs::BicoreIndex bicore = abcs::BicoreIndex::Build(g, &ds.decomp);
    const std::vector<abcs::EdgeId> want =
        built.QueryCommunity(q, ab, ab).edges;

    const std::string bundle_path = "bench_load_startup.tmp.abcs";
    const std::string legacy_path = "bench_load_startup.tmp.idx";
    if (!abcs::SaveDeltaIndex(built, g, legacy_path).ok()) return 1;

    bool identical = true;
    auto check = [&](const std::vector<abcs::EdgeId>& got) {
      identical = identical && got == want;
    };

    // The cold-build and legacy-load baselines are per-dataset; measure
    // once and repeat them on every compression row for self-contained
    // JSON records.
    const double cold_build_1t = TimeBest(1, [&] {
      const abcs::DeltaIndex index =
          abcs::DeltaIndex::Build(g, nullptr, /*num_threads=*/1);
      check(index.QueryCommunity(q, ab, ab).edges);
    });
    const double cold_build_mt = TimeBest(1, [&] {
      const abcs::DeltaIndex index =
          abcs::DeltaIndex::Build(g, nullptr, /*num_threads=*/0);
      check(index.QueryCommunity(q, ab, ab).edges);
    });
    const double legacy_load = TimeBest(3, [&] {
      abcs::DeltaIndex index;
      if (!abcs::LoadDeltaIndex(legacy_path, g, &index).ok()) std::exit(1);
      check(index.QueryCommunity(q, ab, ab).edges);
    });

    std::size_t raw_bytes = 0;
    for (const abcs::BundleCompression level :
         {abcs::BundleCompression::kNone, abcs::BundleCompression::kFast,
          abcs::BundleCompression::kMax}) {
      Row row;
      row.name = spec.name;
      row.compression = abcs::BundleCompressionName(level);
      row.n = g.NumVertices();
      row.m = g.NumEdges();
      row.delta = ds.delta();
      row.cold_build_1t = cold_build_1t;
      row.cold_build_mt = cold_build_mt;
      row.legacy_load = legacy_load;
      {
        abcs::Timer timer;
        abcs::SaveBundleOptions save;
        save.compression = level;
        const abcs::Status st = abcs::SaveIndexBundle(g, ds.decomp, built,
                                                      bicore, bundle_path,
                                                      save);
        row.save_seconds = timer.Seconds();
        if (!st.ok()) {
          std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
          return 1;
        }
      }

      auto open_and_query = [&](abcs::BundleOpenMode mode, bool verify) {
        std::unique_ptr<abcs::IndexBundle> bundle;
        abcs::BundleOpenOptions options;
        options.mode = mode;
        options.verify_checksums = verify;
        if (!abcs::OpenIndexBundle(bundle_path, &bundle, options).ok()) {
          std::exit(1);
        }
        row.bundle_bytes = bundle->FileBytes();
        check(bundle->delta_index().QueryCommunity(q, ab, ab).edges);
      };
      row.open_read = TimeBest(
          3, [&] { open_and_query(abcs::BundleOpenMode::kRead, true); });
      row.open_mmap = TimeBest(
          3, [&] { open_and_query(abcs::BundleOpenMode::kMmap, true); });
      row.open_mmap_unverified = TimeBest(
          3, [&] { open_and_query(abcs::BundleOpenMode::kMmap, false); });

      if (level == abcs::BundleCompression::kNone) raw_bytes = row.bundle_bytes;
      row.compression_ratio =
          row.bundle_bytes > 0
              ? static_cast<double>(raw_bytes) / row.bundle_bytes
              : 1.0;

      constexpr double kMb = 1024.0 * 1024.0;
      std::printf(
          "%-5s %-5s %8u %8u %6u %9.2f %6.2fx %9.4f %10.4f %10.4f %10.4f "
          "%10.4f %7.1fx\n",
          row.name.c_str(), row.compression.c_str(), row.n, row.m, row.delta,
          static_cast<double>(row.bundle_bytes) / kMb, row.compression_ratio,
          row.save_seconds, row.cold_build_mt, row.legacy_load, row.open_read,
          row.open_mmap,
          row.open_mmap > 0 ? row.cold_build_mt / row.open_mmap : 0.0);
      rows.push_back(std::move(row));
    }

    std::remove(bundle_path.c_str());
    std::remove(legacy_path.c_str());
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: %s first-query results differ across paths\n",
                   spec.name.c_str());
      return 1;
    }
  }

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"load_startup\",\n  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        out,
        "    {\"dataset\": \"%s\", \"compression\": \"%s\",\n"
        "     \"n\": %u, \"m\": %u, \"delta\": %u,\n"
        "     \"bundle_bytes\": %zu, \"compression_ratio\": %.4f,\n"
        "     \"save_seconds\": %.6f,\n"
        "     \"cold_build_1t_seconds\": %.6f, "
        "\"cold_build_mt_seconds\": %.6f,\n"
        "     \"legacy_load_seconds\": %.6f, \"open_read_seconds\": %.6f,\n"
        "     \"open_mmap_seconds\": %.6f, "
        "\"open_mmap_unverified_seconds\": %.6f,\n"
        "     \"ttfq_speedup_mmap_vs_cold_build\": %.2f}%s\n",
        r.name.c_str(), r.compression.c_str(), r.n, r.m, r.delta,
        r.bundle_bytes, r.compression_ratio, r.save_seconds, r.cold_build_1t,
        r.cold_build_mt, r.legacy_load, r.open_read, r.open_mmap,
        r.open_mmap_unverified,
        r.open_mmap > 0 ? r.cold_build_mt / r.open_mmap : 0.0,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return 0;
}
