// abcs command-line tool: build/persist the index bundle and run community
// queries on weighted bipartite edge lists.
//
// Usage:
//   abcs stats  <graph>                       print dataset statistics
//   abcs index  <graph> [--out] <bundle-out>  build and persist the ABCSPAK1
//                                             bundle: graph + offset
//                                             decomposition + I_δ + I_v
//                                             (alias: build; per-phase
//                                             timing on stderr)
//   abcs query  <graph> <q> <alpha> <beta> [--index FILE] [--side u|l]
//                                             print C_{α,β}(q)
//   abcs query  --bundle FILE <q> <alpha> <beta> [--side u|l]
//                                             ditto, served straight from an
//                                             mmap'd bundle — no graph file,
//                                             no rebuild
//   abcs query  <graph> --batch <file> [--threads N] [--index FILE]
//               [--method online|bicore|delta|scs-auto|scs-peel|scs-expand|
//                scs-binary] [--side u|l]
//   abcs query  --bundle FILE --batch <file> [--threads N] [--method ...]
//                                             run a query batch through the
//                                             zero-allocation query engine;
//                                             the scs-* methods run the full
//                                             two-step paradigm (retrieve C,
//                                             then extract R with the named
//                                             kernel; scs-auto = planner)
//   abcs scs    <graph> <q> <alpha> <beta> [--index FILE] [--side u|l]
//               [--algo auto|peel|expand|binary|baseline]
//                                             print the significant community
//                                             (phase timing on stderr)
//   abcs profile <graph> <q> <max-alpha> <max-beta> [--index FILE]
//               [--side u|l]                  print f(R) over the (α,β) grid
//   abcs gen    <name> <graph-out>            write a registry dataset
//   abcs serve  <graph>|--bundle FILE [--host H] [--port N] [--threads N]
//               [--port-file F] [--max-connections N] [--max-queue N]
//               [--deadline-ms N] [--no-memo] [--enable-updates]
//               [--update-queue N] [--compact-path F] [--compact-every N]
//                                             resident query daemon over TCP
//                                             (SIGTERM/SIGINT drain cleanly);
//                                             --enable-updates accepts live
//                                             edge updates and serves each
//                                             query from a pinned snapshot
//                                             epoch; --compact-path persists
//                                             the served state as a bundle
//                                             (crash-safe temp+rename, prior
//                                             bundle kept as .prev)
//   abcs client [--host H] --port N --ping
//   abcs client [--host H] --port N <q> <alpha> <beta> [--method M]
//               [--side u|l] [--deadline-ms N]
//   abcs client [--host H] --port N --batch <file> [--method M] [--side u|l]
//               [--deadline-ms N]             pipelined batch; output matches
//                                             `abcs query --batch` minus the
//                                             touched-arcs work counters
//   abcs client [--host H] --port N --batch <file> --connections N
//               --duration S [...]            soak: N concurrent connections
//                                             loop the batch for S seconds
//   abcs client [--host H] --port N (--insert u v w | --remove u v |
//               --reweight u v w)... [--commit]
//                                             live updates, applied in order;
//                                             --commit publishes them as one
//                                             new epoch
//   abcs client [--host H] --port N --update-file F
//                                             batch updates: lines `i u v w`,
//                                             `r u v`, `w u v w`, `c`
//
// <graph> is a whitespace edge list `u v [w]` with 0-based layer-local ids
// (lines starting with % or # ignored). <q> is a layer-local id; --side
// selects the layer (default: u).
//
// --index FILE auto-detects the format by magic: an ABCSPAK1 bundle is
// opened zero-copy and cross-checked against the supplied graph (topology
// checksum AND weight digest, so stale significances are rejected); a
// legacy ABCSIDX dump loads through the deprecated load-only path. scs and
// profile accept --bundle too.
//
// A batch file has one query per line: `q alpha beta [u|l]` (layer-local
// q; the trailing letter overrides the batch-wide --side; % and # comment
// lines ignored). Per-query results and aggregate counts go to stdout and
// are deterministic for any --threads value; timing goes to stderr.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "abcore/degeneracy.h"
#include "abcore/peeling.h"
#include "common/timer.h"
#include "core/bicore_index.h"
#include "core/delta_index.h"
#include "core/index_io.h"
#include "core/query_engine.h"
#include "core/scs_auto.h"
#include "core/scs_baseline.h"
#include "core/profile.h"
#include "graph/datasets.h"
#include "graph/graph_io.h"
#include "io/fault_inject.h"
#include "io/index_bundle.h"
#include "serve/client.h"
#include "serve/server.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  abcs stats <graph>\n"
               "  abcs index <graph> [--out] <bundle-out> "
               "[--compress[=none|fast|max]]\n"
               "      (alias: build; writes the ABCSPAK2 bundle; bare "
               "--compress means max;\n"
               "      phase timing on stderr)\n"
               "  abcs inspect <bundle>   (per-section codec, stored/decoded "
               "bytes, ratio)\n"
               "  abcs query <graph> <q> <alpha> <beta> [--index FILE] "
               "[--side u|l]\n"
               "  abcs query --bundle FILE <q> <alpha> <beta> [--side u|l]\n"
               "  abcs query <graph>|--bundle FILE --batch <file> "
               "[--threads N] [--method online|bicore|delta|scs-auto|"
               "scs-peel|scs-expand|scs-binary] [--index FILE] [--side u|l]\n"
               "  abcs scs   <graph> <q> <alpha> <beta> [--index FILE] "
               "[--side u|l] [--algo auto|peel|expand|binary|baseline]\n"
               "  abcs gen   <name> <graph-out>\n"
               "  abcs serve <graph>|--bundle FILE [--host H] [--port N] "
               "[--threads N] [--port-file F] [--max-connections N] "
               "[--max-queue N] [--deadline-ms N] [--no-memo] "
               "[--enable-updates] [--update-queue N] [--compact-path F] "
               "[--compact-every N] [--write-deadline-ms N] [--max-out-kb N] "
               "[--watchdog-interval-ms N] [--sndbuf-kb N] [--fast-drain] "
               "[--scrub-interval-ms N]\n"
               "  abcs client [--host H] --port N (--ping | --health | <q> "
               "<alpha> <beta> | --batch FILE [--connections N --duration S]) "
               "[--method M] [--side u|l] [--deadline-ms N]\n"
               "  abcs client ... [--connect-timeout-ms N] [--io-timeout-ms "
               "N] [--retries N]   (transport knobs, any mode)\n"
               "  abcs client --port N <q> <alpha> <beta> --flood N "
               "[--hold-ms N] [--rcvbuf-kb N]   (slow-client chaos probe)\n"
               "  abcs client [--host H] --port N (--insert u v w | "
               "--remove u v | --reweight u v w)... [--commit]\n"
               "  abcs client [--host H] --port N --update-file F   "
               "(lines: i u v w | r u v | w u v w | c)\n");
  return 2;
}

int Fail(const abcs::Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

struct QueryArgs {
  std::string graph_path;
  std::string bundle_path;  ///< --bundle: self-contained, no graph file
  abcs::VertexId q = 0;
  uint32_t alpha = 0, beta = 0;
  std::string index_path;
  bool lower_side = false;
  std::string algo = "auto";
  std::string batch_path;
  std::string method = "delta";
  unsigned num_threads = 1;
  bool batch_only_flags = false;  ///< --threads/--method were given
  bool algo_set = false;          ///< --algo was given
};

bool ParseQueryArgs(int argc, char** argv, QueryArgs* args) {
  // Flags are order-free; positionals are collected in order. With
  // --bundle the graph positional disappears (the bundle embeds it), and
  // with --batch the q/alpha/beta positionals disappear.
  std::vector<const char*> pos;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--index") == 0 && i + 1 < argc) {
      args->index_path = argv[++i];
    } else if (std::strcmp(argv[i], "--bundle") == 0 && i + 1 < argc) {
      args->bundle_path = argv[++i];
    } else if (std::strcmp(argv[i], "--side") == 0 && i + 1 < argc) {
      args->lower_side = (argv[++i][0] == 'l');
    } else if (std::strcmp(argv[i], "--algo") == 0 && i + 1 < argc) {
      args->algo = argv[++i];
      args->algo_set = true;
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      args->batch_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n < 0 || n > 1024) {
        return false;  // 0 = hardware concurrency
      }
      args->num_threads = static_cast<unsigned>(n);
      args->batch_only_flags = true;
    } else if (std::strcmp(argv[i], "--method") == 0 && i + 1 < argc) {
      args->method = argv[++i];
      args->batch_only_flags = true;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      return false;
    } else {
      pos.push_back(argv[i]);
    }
  }
  // A bundle embeds both graph and index; combining it with either source
  // would leave two contradictory truths about what is being queried.
  if (!args->bundle_path.empty() && !args->index_path.empty()) return false;
  std::size_t expect = args->bundle_path.empty() ? 1 : 0;
  if (args->batch_path.empty()) expect += 3;
  if (pos.size() != expect) return false;
  std::size_t k = 0;
  if (args->bundle_path.empty()) args->graph_path = pos[k++];
  if (args->batch_path.empty()) {
    args->q = static_cast<abcs::VertexId>(std::atol(pos[k]));
    args->alpha = static_cast<uint32_t>(std::atol(pos[k + 1]));
    args->beta = static_cast<uint32_t>(std::atol(pos[k + 2]));
  }
  if (!args->batch_path.empty()) return true;
  // --threads/--method only mean something in batch mode; rejecting them
  // here keeps "asked for a method" distinguishable from "served by it".
  if (args->batch_only_flags) return false;
  return args->alpha >= 1 && args->beta >= 1;
}

/// What a query-like command operates on: the graph (edge-list file or the
/// one embedded in an opened bundle) plus the bundle, when one backs the
/// session — either via --bundle or via an --index file that sniffed as
/// ABCSPAK1.
struct Session {
  abcs::BipartiteGraph graph_storage;
  std::unique_ptr<abcs::IndexBundle> bundle;
  const abcs::BipartiteGraph* graph = nullptr;
};

abcs::Status LoadSession(const QueryArgs& args, Session* s) {
  if (!args.bundle_path.empty()) {
    // Recovery path: a bundle torn by a crash mid-compaction falls back to
    // the `.prev` epoch the writer rotated aside, with a logged diagnostic.
    std::string diagnostic;
    ABCS_RETURN_NOT_OK(abcs::OpenBundleWithFallback(
        args.bundle_path, &s->bundle, {}, &diagnostic));
    if (!diagnostic.empty()) {
      std::fprintf(stderr, "# %s\n", diagnostic.c_str());
    }
    s->graph = &s->bundle->graph();
    return abcs::Status::OK();
  }
  ABCS_RETURN_NOT_OK(
      abcs::LoadEdgeList(args.graph_path, &s->graph_storage,
                         /*zero_based=*/true));
  s->graph = &s->graph_storage;
  return abcs::Status::OK();
}

/// Resolves the I_δ that serves this session: the bundle's (zero-copy), a
/// loaded --index file (bundle or legacy dump, by magic), or a fresh
/// build. An --index bundle is cross-checked against the supplied graph —
/// topology checksum and weight digest — so a stale file fails loudly.
abcs::Status GetIndex(const QueryArgs& args, Session* s,
                      abcs::DeltaIndex* owned,
                      const abcs::DeltaIndex** index) {
  if (s->bundle != nullptr) {
    *index = &s->bundle->delta_index();
    return abcs::Status::OK();
  }
  if (!args.index_path.empty()) {
    if (abcs::LooksLikeIndexBundle(args.index_path)) {
      ABCS_RETURN_NOT_OK(abcs::OpenIndexBundle(args.index_path, &s->bundle));
      ABCS_RETURN_NOT_OK(
          abcs::VerifyBundleMatchesGraph(*s->bundle, *s->graph));
      *index = &s->bundle->delta_index();
      return abcs::Status::OK();
    }
    ABCS_RETURN_NOT_OK(abcs::LoadDeltaIndex(args.index_path, *s->graph,
                                            owned));
    *index = owned;
    return abcs::Status::OK();
  }
  *owned = abcs::DeltaIndex::Build(*s->graph);
  *index = owned;
  return abcs::Status::OK();
}

void PrintSubgraph(const abcs::BipartiteGraph& g, const abcs::Subgraph& sub) {
  const abcs::SubgraphStats stats = abcs::ComputeStats(g, sub);
  std::printf("# |E|=%zu |U|=%u |L|=%u min_w=%g avg_w=%g\n", sub.Size(),
              stats.num_upper, stats.num_lower, stats.min_weight,
              stats.avg_weight);
  for (abcs::EdgeId e : sub.edges) {
    const abcs::Edge& ed = g.GetEdge(e);
    std::printf("%u %u %g\n", ed.u, ed.v - g.NumUpper(), ed.w);
  }
}

int CmdStats(const std::string& path) {
  abcs::BipartiteGraph g;
  abcs::Status st = abcs::LoadEdgeList(path, &g, /*zero_based=*/true);
  if (!st.ok()) return Fail(st);
  const uint32_t delta = abcs::Degeneracy(g);
  const abcs::CoreResult rdd = abcs::ComputeAlphaBetaCore(g, delta, delta);
  std::printf("|E|=%u |U|=%u |L|=%u delta=%u amax=%u bmax=%u |Rdd|=%u\n",
              g.NumEdges(), g.NumUpper(), g.NumLower(), delta,
              g.MaxUpperDegree(), g.MaxLowerDegree(), rdd.num_edges);
  return 0;
}

int CmdIndex(const std::string& graph_path, const std::string& out_path,
             abcs::BundleCompression compression) {
  abcs::BipartiteGraph g;
  abcs::Status st = abcs::LoadEdgeList(graph_path, &g, /*zero_based=*/true);
  if (!st.ok()) return Fail(st);
  // Per-phase breakdown on stderr so a build regression in any one stage
  // (offset decomposition, entry emission, serialisation) is diagnosable
  // straight from logs.
  abcs::Timer timer;
  const abcs::BicoreDecomposition decomp =
      abcs::ComputeBicoreDecompositionParallel(g, /*num_threads=*/0);
  const double decomp_s = timer.Seconds();
  timer.Reset();
  const abcs::DeltaIndex index = abcs::DeltaIndex::Build(g, &decomp);
  const double entries_s = timer.Seconds();
  timer.Reset();
  const abcs::BicoreIndex bicore = abcs::BicoreIndex::Build(g, &decomp);
  const double bicore_s = timer.Seconds();
  // This line reports I_δ alone (time and bytes) so its trend stays
  // comparable across releases; the I_v build and the full bundle size
  // have their own figures below and in the stderr phase breakdown.
  std::printf("built I_delta (delta=%u) in %.3fs, %.2f MB\n", index.delta(),
              decomp_s + entries_s,
              static_cast<double>(index.MemoryBytes()) / (1024.0 * 1024.0));
  timer.Reset();
  abcs::SaveBundleOptions save;
  save.compression = compression;
  st = abcs::SaveIndexBundle(g, decomp, index, bicore, out_path, save);
  if (!st.ok()) return Fail(st);
  const double save_s = timer.Seconds();
  std::fprintf(stderr,
               "# build phases: decomposition=%.3fs (%.2f MB arena) "
               "entries=%.3fs bicore=%.3fs serialisation=%.3fs\n",
               decomp_s,
               static_cast<double>(decomp.MemoryBytes()) / (1024.0 * 1024.0),
               entries_s, bicore_s, save_s);
  std::error_code ec;
  const auto bundle_bytes = std::filesystem::file_size(out_path, ec);
  std::printf("saved to %s (%.2f MB bundle, compression=%s: graph + "
              "decomposition + I_delta + I_v)\n",
              out_path.c_str(),
              ec ? 0.0 : static_cast<double>(bundle_bytes) / (1024.0 * 1024.0),
              abcs::BundleCompressionName(compression));
  return 0;
}

// Prints the bundle TOC: one row per section with its codec tag, stored
// (on-disk) and decoded byte counts, and the per-section ratio — the
// ground truth for "what did --compress actually buy on this dataset".
int CmdInspect(const std::string& bundle_path) {
  std::unique_ptr<abcs::IndexBundle> bundle;
  abcs::Status st = abcs::OpenIndexBundle(bundle_path, &bundle);
  if (!st.ok()) return Fail(st);
  std::printf("%s: ABCSPAK%u, %zu sections\n", bundle_path.c_str(),
              bundle->FormatVersion(), bundle->Sections().size());
  std::printf("%-18s %-14s %12s %12s %7s\n", "section", "codec", "stored",
              "decoded", "ratio");
  uint64_t stored_total = 0, decoded_total = 0;
  for (const abcs::BundleSectionInfo& info : bundle->Sections()) {
    stored_total += info.stored_bytes;
    decoded_total += info.decoded_bytes;
    const double ratio =
        info.stored_bytes > 0 ? static_cast<double>(info.decoded_bytes) /
                                    static_cast<double>(info.stored_bytes)
                              : 1.0;
    std::printf("%-18s %-14s %12llu %12llu %6.2fx\n", info.name.c_str(),
                abcs::SectionCodecName(info.codec),
                static_cast<unsigned long long>(info.stored_bytes),
                static_cast<unsigned long long>(info.decoded_bytes), ratio);
  }
  std::printf("%-18s %-14s %12llu %12llu %6.2fx\n", "total", "",
              static_cast<unsigned long long>(stored_total),
              static_cast<unsigned long long>(decoded_total),
              stored_total > 0 ? static_cast<double>(decoded_total) /
                                     static_cast<double>(stored_total)
                               : 1.0);
  std::printf("file bytes: %zu   decode pool: %zu bytes   zero-copy: %s\n",
              bundle->FileBytes(), bundle->DecodePoolBytes(),
              bundle->ZeroCopy() ? "yes" : "no");
  return 0;
}

// Parses `q alpha beta [u|l]` lines (layer-local q) into unified-id
// requests; default_lower applies when a line has no side letter.
abcs::Status ParseBatchFile(const std::string& path,
                            const abcs::BipartiteGraph& g, bool default_lower,
                            std::vector<abcs::QueryRequest>* out) {
  std::ifstream in(path);
  if (!in) return abcs::Status::NotFound("cannot open batch file " + path);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#' ||
        line[first] == '%') {
      continue;
    }
    unsigned long id = 0, alpha = 0, beta = 0;
    char side = default_lower ? 'l' : 'u';
    char junk[2];
    const int got = std::sscanf(line.c_str(), "%lu %lu %lu %c %1s", &id,
                                &alpha, &beta, &side, junk);
    if (got < 3 || got > 4 || alpha == 0 || beta == 0 ||
        alpha > 0xffffffffUL || beta > 0xffffffffUL ||
        (side != 'u' && side != 'l')) {
      return abcs::Status::InvalidArgument(
          path + ":" + std::to_string(lineno) + ": expected `q alpha beta " +
          "[u|l]`, got `" + line + "`");
    }
    // Range-check before narrowing so a 64-bit id cannot wrap into a
    // valid vertex.
    const unsigned long layer_size =
        side == 'l' ? g.NumLower() : g.NumUpper();
    if (id >= layer_size) {
      return abcs::Status::InvalidArgument(
          path + ":" + std::to_string(lineno) + ": vertex out of range");
    }
    const abcs::VertexId q = side == 'l'
                                 ? g.NumUpper() + static_cast<uint32_t>(id)
                                 : static_cast<uint32_t>(id);
    out->push_back(abcs::QueryRequest{q, static_cast<uint32_t>(alpha),
                                      static_cast<uint32_t>(beta)});
  }
  return abcs::Status::OK();
}

// Batch of full two-step SCS queries: retrieval through the delta index,
// extraction by `algo` (kAuto = per-query planner). stdout carries only
// thread-count-invariant data; timing and the phase/kernel breakdown go to
// stderr.
int RunScsBatchQueries(const QueryArgs& args, Session* session,
                       const std::vector<abcs::QueryRequest>& requests,
                       abcs::ScsAlgo algo) {
  const abcs::BipartiteGraph& g = *session->graph;
  abcs::DeltaIndex owned_delta;
  const abcs::DeltaIndex* delta = &owned_delta;
  abcs::Status st = GetIndex(args, session, &owned_delta, &delta);
  if (!st.ok()) return Fail(st);

  const abcs::QueryEngine engine(g, abcs::QueryMethod::kDelta, delta);
  abcs::ScsBatchOptions options;
  options.num_threads = args.num_threads;
  options.algo = algo;
  const abcs::ScsBatchResult batch = engine.RunScsBatch(requests, options);

  std::printf("# batch of %zu scs queries, algo=%s\n", requests.size(),
              abcs::ScsAlgoName(algo));
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const abcs::QueryRequest& r = requests[i];
    const abcs::ScsOutcome& o = batch.outcomes[i];
    const bool lower = !g.IsUpper(r.q);
    if (o.found) {
      std::printf("%zu %s%u (%u,%u) |C|=%u |R|=%u f=%g kernel=%s\n", i,
                  lower ? "l" : "u", lower ? r.q - g.NumUpper() : r.q,
                  r.alpha, r.beta, o.community_edges, o.result_edges,
                  o.significance, abcs::ScsAlgoName(o.algo_used));
    } else {
      std::printf("%zu %s%u (%u,%u) |C|=%u none\n", i, lower ? "l" : "u",
                  lower ? r.q - g.NumUpper() : r.q, r.alpha, r.beta,
                  o.community_edges);
    }
  }
  const abcs::ScsBatchStats& s = batch.stats;
  std::printf("# found=%llu total_C=%llu total_R=%llu\n",
              static_cast<unsigned long long>(s.num_found),
              static_cast<unsigned long long>(s.total_community_edges),
              static_cast<unsigned long long>(s.total_result_edges));
  std::fprintf(
      stderr,
      "# threads=%u wall=%.3es qps=%.1f p50=%.3es p99=%.3es "
      "retrieve=%.3es scs=%.3es kernels: peel=%llu expand=%llu binary=%llu "
      "validations=%llu incremental_probes=%llu\n",
      batch.num_threads_used, batch.wall_seconds, batch.QueriesPerSecond(),
      s.p50_seconds, s.p99_seconds, s.retrieve_seconds,
      s.total_seconds - s.retrieve_seconds,
      static_cast<unsigned long long>(
          s.algo_counts[static_cast<int>(abcs::ScsAlgo::kPeel)]),
      static_cast<unsigned long long>(
          s.algo_counts[static_cast<int>(abcs::ScsAlgo::kExpand)]),
      static_cast<unsigned long long>(
          s.algo_counts[static_cast<int>(abcs::ScsAlgo::kBinary)]),
      static_cast<unsigned long long>(s.validations),
      static_cast<unsigned long long>(s.incremental_probes));
  return 0;
}

int CmdQueryBatch(const QueryArgs& args) {
  Session session;
  abcs::Status st = LoadSession(args, &session);
  if (!st.ok()) return Fail(st);
  const abcs::BipartiteGraph& g = *session.graph;
  std::vector<abcs::QueryRequest> requests;
  st = ParseBatchFile(args.batch_path, g, args.lower_side, &requests);
  if (!st.ok()) return Fail(st);

  if (args.method.rfind("scs-", 0) == 0) {
    abcs::ScsAlgo algo;
    const std::string kernel = args.method.substr(4);
    if (kernel == "auto") {
      algo = abcs::ScsAlgo::kAuto;
    } else if (kernel == "peel") {
      algo = abcs::ScsAlgo::kPeel;
    } else if (kernel == "expand") {
      algo = abcs::ScsAlgo::kExpand;
    } else if (kernel == "binary") {
      algo = abcs::ScsAlgo::kBinary;
    } else {
      return Fail(abcs::Status::InvalidArgument("unknown --method"));
    }
    return RunScsBatchQueries(args, &session, requests, algo);
  }

  abcs::QueryMethod method;
  if (args.method == "online") {
    method = abcs::QueryMethod::kOnline;
  } else if (args.method == "bicore") {
    method = abcs::QueryMethod::kBicore;
  } else if (args.method == "delta") {
    method = abcs::QueryMethod::kDelta;
  } else {
    return Fail(abcs::Status::InvalidArgument("unknown --method"));
  }

  abcs::DeltaIndex owned_delta;
  abcs::BicoreIndex owned_bicore;
  const abcs::DeltaIndex* delta = &owned_delta;
  const abcs::BicoreIndex* bicore = &owned_bicore;
  if (method == abcs::QueryMethod::kDelta) {
    st = GetIndex(args, &session, &owned_delta, &delta);
    if (!st.ok()) return Fail(st);
  } else {
    // A bundle carries I_v too, so bicore batches skip the rebuild; a
    // legacy --index dump only holds I_δ, and the online method uses no
    // index at all — silently ignoring --index in either case would hide
    // a rebuild (or a no-op) behind an apparently-used index file.
    if (!args.index_path.empty()) {
      if (method != abcs::QueryMethod::kBicore ||
          !abcs::LooksLikeIndexBundle(args.index_path)) {
        return Fail(abcs::Status::InvalidArgument(
            "--index applies to --method delta, or --method bicore with a "
            "bundle; --method online uses no index"));
      }
      st = abcs::OpenIndexBundle(args.index_path, &session.bundle);
      if (!st.ok()) return Fail(st);
      st = abcs::VerifyBundleMatchesGraph(*session.bundle, g);
      if (!st.ok()) return Fail(st);
    }
    if (method == abcs::QueryMethod::kBicore) {
      if (session.bundle != nullptr) {
        bicore = &session.bundle->bicore_index();
      } else {
        owned_bicore = abcs::BicoreIndex::Build(g, nullptr,
                                                /*num_threads=*/0);
      }
    }
  }

  const abcs::QueryEngine engine(g, method, delta, bicore);
  abcs::BatchOptions options;
  options.num_threads = args.num_threads;
  const abcs::BatchResult batch = engine.RunBatch(requests, options);

  // stdout carries only thread-count-invariant data (the smoke test diffs
  // runs at different --threads); timing goes to stderr.
  std::printf("# batch of %zu queries, method=%s\n", requests.size(),
              abcs::QueryMethodName(engine.method()));
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const abcs::QueryRequest& r = requests[i];
    const abcs::QueryOutcome& o = batch.outcomes[i];
    const bool lower = !g.IsUpper(r.q);
    std::printf("%zu %s%u (%u,%u) |E|=%u touched=%llu\n", i,
                lower ? "l" : "u", lower ? r.q - g.NumUpper() : r.q, r.alpha,
                r.beta, o.num_edges,
                static_cast<unsigned long long>(o.touched_arcs));
  }
  std::printf("# nonempty=%llu total_edges=%llu touched_arcs=%llu\n",
              static_cast<unsigned long long>(batch.stats.num_nonempty),
              static_cast<unsigned long long>(batch.stats.total_edges),
              static_cast<unsigned long long>(batch.stats.touched_arcs));
  std::fprintf(stderr,
               "# threads=%u wall=%.3es qps=%.1f p50=%.3es p99=%.3es\n",
               batch.num_threads_used, batch.wall_seconds,
               batch.QueriesPerSecond(), batch.stats.p50_seconds,
               batch.stats.p99_seconds);
  return 0;
}

int CmdQuery(const QueryArgs& args) {
  if (!args.batch_path.empty()) return CmdQueryBatch(args);
  Session session;
  abcs::Status st = LoadSession(args, &session);
  if (!st.ok()) return Fail(st);
  const abcs::BipartiteGraph& g = *session.graph;
  const abcs::VertexId q = args.lower_side ? g.NumUpper() + args.q : args.q;
  if (q >= g.NumVertices()) {
    return Fail(abcs::Status::InvalidArgument("query vertex out of range"));
  }
  abcs::DeltaIndex owned;
  const abcs::DeltaIndex* index = nullptr;
  st = GetIndex(args, &session, &owned, &index);
  if (!st.ok()) return Fail(st);
  abcs::Timer timer;
  const abcs::Subgraph c = index->QueryCommunity(q, args.alpha, args.beta);
  std::printf("# (%u,%u)-community of %s%u in %.2e s\n", args.alpha,
              args.beta, args.lower_side ? "l" : "u", args.q,
              timer.Seconds());
  PrintSubgraph(g, c);
  return 0;
}

int CmdScs(const QueryArgs& args) {
  Session session;
  abcs::Status st = LoadSession(args, &session);
  if (!st.ok()) return Fail(st);
  const abcs::BipartiteGraph& g = *session.graph;
  const abcs::VertexId q = args.lower_side ? g.NumUpper() + args.q : args.q;
  if (q >= g.NumVertices()) {
    return Fail(abcs::Status::InvalidArgument("query vertex out of range"));
  }
  abcs::DeltaIndex owned;
  const abcs::DeltaIndex* index = nullptr;
  st = GetIndex(args, &session, &owned, &index);
  if (!st.ok()) return Fail(st);

  abcs::Timer timer;
  abcs::ScsResult result;
  abcs::ScsStats scs_stats;
  double retrieve_s = 0.0;
  if (args.algo == "baseline") {
    result = abcs::ScsBaseline(g, q, args.alpha, args.beta, {}, &scs_stats);
  } else {
    abcs::ScsAlgo algo;
    if (args.algo == "auto") {
      algo = abcs::ScsAlgo::kAuto;
    } else if (args.algo == "peel") {
      algo = abcs::ScsAlgo::kPeel;
    } else if (args.algo == "expand") {
      algo = abcs::ScsAlgo::kExpand;
    } else if (args.algo == "binary") {
      algo = abcs::ScsAlgo::kBinary;
    } else {
      return Fail(abcs::Status::InvalidArgument("unknown --algo"));
    }
    const abcs::Subgraph c = index->QueryCommunity(q, args.alpha, args.beta);
    retrieve_s = timer.Seconds();
    result = abcs::ScsQuery(g, c, q, args.alpha, args.beta, algo, {},
                            &scs_stats);
  }
  const double total_s = timer.Seconds();
  // Phase breakdown on stderr so a slow query is attributable to retrieval
  // vs extraction straight from logs; stdout stays deterministic.
  std::fprintf(stderr,
               "# scs phases: retrieve=%.3es scs=%.3es kernel=%s "
               "validations=%u incremental_probes=%u edges_processed=%llu\n",
               retrieve_s, total_s - retrieve_s,
               args.algo == "baseline" ? "baseline"
                                       : abcs::ScsAlgoName(scs_stats.algo_used),
               scs_stats.validations,
               scs_stats.incremental_probes,
               static_cast<unsigned long long>(scs_stats.edges_processed));
  if (!result.found) {
    std::printf("# no significant (%u,%u)-community for this vertex\n",
                args.alpha, args.beta);
    return 0;
  }
  std::printf("# significant (%u,%u)-community, f(R)=%g, %s, %.2e s\n",
              args.alpha, args.beta, result.significance, args.algo.c_str(),
              total_s);
  PrintSubgraph(g, result.community);
  return 0;
}

int CmdProfile(const QueryArgs& args) {
  Session session;
  abcs::Status st = LoadSession(args, &session);
  if (!st.ok()) return Fail(st);
  const abcs::BipartiteGraph& g = *session.graph;
  const abcs::VertexId q = args.lower_side ? g.NumUpper() + args.q : args.q;
  if (q >= g.NumVertices()) {
    return Fail(abcs::Status::InvalidArgument("query vertex out of range"));
  }
  abcs::DeltaIndex owned;
  const abcs::DeltaIndex* index = nullptr;
  st = GetIndex(args, &session, &owned, &index);
  if (!st.ok()) return Fail(st);
  // For `profile`, alpha/beta play the role of grid bounds.
  const abcs::SignificanceProfile profile = abcs::ComputeSignificanceProfile(
      g, *index, q, args.alpha, args.beta);
  std::printf("# f(R) for %s%u; rows alpha=1..%u, cols beta=1..%u "
              "('-' = no community)\n",
              args.lower_side ? "l" : "u", args.q, args.alpha, args.beta);
  for (uint32_t a = 1; a <= args.alpha; ++a) {
    for (uint32_t b = 1; b <= args.beta; ++b) {
      if (profile.ExistsAt(a, b)) {
        std::printf("%8.3g", profile.At(a, b));
      } else {
        std::printf("%8s", "-");
      }
    }
    std::printf("\n");
  }
  return 0;
}

int CmdGen(const std::string& name, const std::string& out_path) {
  const abcs::DatasetSpec* spec = abcs::FindDataset(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown dataset %s; available:", name.c_str());
    for (const abcs::DatasetSpec& s : abcs::AllDatasets()) {
      std::fprintf(stderr, " %s", s.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }
  abcs::BipartiteGraph g;
  abcs::Status st = abcs::MakeDataset(*spec, &g);
  if (!st.ok()) return Fail(st);
  st = abcs::SaveEdgeList(g, out_path);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s: %u edges\n", out_path.c_str(), g.NumEdges());
  return 0;
}

// ---------------------------------------------------------------------------
// abcs serve
// ---------------------------------------------------------------------------

// The signal handler may only do an atomic store; the main thread polls the
// flag and performs the actual graceful drain from a normal context.
abcs::serve::Server* g_serve_instance = nullptr;

extern "C" void HandleServeSignal(int) {
  if (g_serve_instance != nullptr) g_serve_instance->RequestShutdown();
}

struct ServeArgs {
  std::string graph_path;
  std::string bundle_path;
  std::string port_file;
  abcs::serve::ServerOptions options;
};

bool ParseServeArgs(int argc, char** argv, ServeArgs* args) {
  std::vector<const char*> pos;
  auto parse_u32 = [&](int* i, long max, long* out) {
    if (*i + 1 >= argc) return false;
    char* end = nullptr;
    const long n = std::strtol(argv[++*i], &end, 10);
    if (end == argv[*i] || *end != '\0' || n < 0 || n > max) return false;
    *out = n;
    return true;
  };
  long n = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bundle") == 0 && i + 1 < argc) {
      args->bundle_path = argv[++i];
    } else if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      args->options.host = argv[++i];
    } else if (std::strcmp(argv[i], "--port-file") == 0 && i + 1 < argc) {
      args->port_file = argv[++i];
    } else if (std::strcmp(argv[i], "--port") == 0) {
      if (!parse_u32(&i, 65535, &n)) return false;
      args->options.port = static_cast<uint16_t>(n);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (!parse_u32(&i, 1024, &n)) return false;
      args->options.num_threads = static_cast<unsigned>(n);
    } else if (std::strcmp(argv[i], "--max-connections") == 0) {
      if (!parse_u32(&i, 1 << 20, &n) || n == 0) return false;
      args->options.max_connections = static_cast<unsigned>(n);
    } else if (std::strcmp(argv[i], "--max-queue") == 0) {
      if (!parse_u32(&i, 1 << 24, &n) || n == 0) return false;
      args->options.max_queue = static_cast<std::size_t>(n);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      if (!parse_u32(&i, 1L << 30, &n)) return false;
      args->options.default_deadline_ms = static_cast<uint32_t>(n);
    } else if (std::strcmp(argv[i], "--no-memo") == 0) {
      args->options.enable_memo = false;
    } else if (std::strcmp(argv[i], "--enable-updates") == 0) {
      args->options.enable_updates = true;
    } else if (std::strcmp(argv[i], "--update-queue") == 0) {
      if (!parse_u32(&i, 1 << 24, &n) || n == 0) return false;
      args->options.update_queue = static_cast<std::size_t>(n);
    } else if (std::strcmp(argv[i], "--compact-path") == 0 && i + 1 < argc) {
      args->options.compact_path = argv[++i];
    } else if (std::strcmp(argv[i], "--compact-every") == 0) {
      if (!parse_u32(&i, 1 << 24, &n)) return false;
      args->options.compact_every = static_cast<uint32_t>(n);
    } else if (std::strcmp(argv[i], "--write-deadline-ms") == 0) {
      if (!parse_u32(&i, 1L << 30, &n)) return false;
      args->options.write_deadline_ms = static_cast<uint32_t>(n);
    } else if (std::strcmp(argv[i], "--max-out-kb") == 0) {
      if (!parse_u32(&i, 1 << 22, &n) || n == 0) return false;
      args->options.max_output_buffer = static_cast<std::size_t>(n) << 10;
    } else if (std::strcmp(argv[i], "--watchdog-interval-ms") == 0) {
      if (!parse_u32(&i, 1L << 30, &n)) return false;
      args->options.watchdog_interval_ms = static_cast<uint32_t>(n);
    } else if (std::strcmp(argv[i], "--sndbuf-kb") == 0) {
      if (!parse_u32(&i, 1 << 20, &n) || n == 0) return false;
      args->options.so_sndbuf = static_cast<uint32_t>(n) << 10;
    } else if (std::strcmp(argv[i], "--fast-drain") == 0) {
      args->options.fast_drain = true;
    } else if (std::strcmp(argv[i], "--scrub-interval-ms") == 0) {
      if (!parse_u32(&i, 1L << 30, &n) || n == 0) return false;
      args->options.scrub_interval_ms = static_cast<uint32_t>(n);
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      return false;
    } else {
      pos.push_back(argv[i]);
    }
  }
  if (!args->options.compact_path.empty() && !args->options.enable_updates) {
    return false;  // compaction is the update writer's job
  }
  if (args->options.scrub_interval_ms > 0 &&
      (args->bundle_path.empty() || args->options.enable_updates)) {
    // The scrubber verifies a bundle file and republishes via the static
    // recovery path; it cannot coexist with the update writer.
    return false;
  }
  if (args->bundle_path.empty()) {
    if (pos.size() != 1) return false;
    args->graph_path = pos[0];
  } else if (!pos.empty()) {
    return false;
  }
  return true;
}

int CmdServe(const ServeArgs& args) {
  QueryArgs qargs;
  qargs.graph_path = args.graph_path;
  qargs.bundle_path = args.bundle_path;
  Session session;
  abcs::Status st = LoadSession(qargs, &session);
  if (!st.ok()) return Fail(st);
  const abcs::BipartiteGraph& g = *session.graph;

  // The daemon serves every method, so it needs both indexes resident: the
  // bundle maps them zero-copy; a raw edge list pays one build at startup.
  abcs::DeltaIndex owned_delta;
  const abcs::DeltaIndex* delta = nullptr;
  st = GetIndex(qargs, &session, &owned_delta, &delta);
  if (!st.ok()) return Fail(st);
  abcs::BicoreIndex owned_bicore;
  const abcs::BicoreIndex* bicore = nullptr;
  if (session.bundle != nullptr) {
    bicore = &session.bundle->bicore_index();
  } else {
    owned_bicore = abcs::BicoreIndex::Build(g, nullptr, /*num_threads=*/0);
    bicore = &owned_bicore;
  }

  abcs::serve::ServerOptions options = args.options;
  options.bundle_path = args.bundle_path;
  if (session.bundle != nullptr) {
    // Seeds the update writer's maintained state without re-peeling.
    options.seed_decomp = &session.bundle->decomposition();
  }
  abcs::serve::Server server(g, delta, bicore, options);
  st = server.Start();
  if (!st.ok()) return Fail(st);

  g_serve_instance = &server;
  struct sigaction sa = {};
  sa.sa_handler = HandleServeSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  if (!args.port_file.empty()) {
    std::ofstream out(args.port_file, std::ios::trunc);
    out << server.port() << "\n";
    if (!out) {
      server.Shutdown();
      return Fail(abcs::Status::IOError("cannot write " + args.port_file));
    }
  }
  std::fprintf(stderr,
               "# serving %s:%u (|E|=%u, memo=%s, updates=%s); SIGTERM "
               "drains\n",
               options.host.c_str(), server.port(), g.NumEdges(),
               options.enable_memo ? "on" : "off",
               options.enable_updates ? "on" : "off");

  server.WaitForShutdownRequest();
  server.Shutdown();
  const abcs::serve::ServeStats s = server.Stats();
  std::fprintf(stderr,
               "# drained: conns=%llu rejected=%llu requests=%llu ok=%llu "
               "errors=%llu memo_hits=%llu deadline=%llu stuck_cancelled=%llu "
               "overload=%llu protocol=%llu slow_dropped=%llu "
               "health_probes=%llu queued_at_shutdown=%llu\n",
               static_cast<unsigned long long>(s.connections_accepted),
               static_cast<unsigned long long>(s.connections_rejected),
               static_cast<unsigned long long>(s.requests),
               static_cast<unsigned long long>(s.responses_ok),
               static_cast<unsigned long long>(s.responses_error),
               static_cast<unsigned long long>(s.memo_hits),
               static_cast<unsigned long long>(s.deadline_expired),
               static_cast<unsigned long long>(s.stuck_cancelled),
               static_cast<unsigned long long>(s.overloaded),
               static_cast<unsigned long long>(s.protocol_errors),
               static_cast<unsigned long long>(s.slow_client_dropped),
               static_cast<unsigned long long>(s.health_probes),
               static_cast<unsigned long long>(s.drained_tasks));
  if (options.scrub_interval_ms > 0) {
    std::fprintf(stderr,
                 "# scrub: passes=%llu corruptions=%llu recoveries=%llu\n",
                 static_cast<unsigned long long>(s.scrub_passes),
                 static_cast<unsigned long long>(s.scrub_corruptions),
                 static_cast<unsigned long long>(s.scrub_recoveries));
  }
  if (options.enable_updates) {
    std::fprintf(stderr,
                 "# updates: applied=%llu conflicts=%llu epochs=%llu "
                 "compactions=%llu overflows=%llu final_epoch=%llu\n",
                 static_cast<unsigned long long>(s.updates_applied),
                 static_cast<unsigned long long>(s.update_conflicts),
                 static_cast<unsigned long long>(s.epochs_published),
                 static_cast<unsigned long long>(s.compactions),
                 static_cast<unsigned long long>(s.update_overflows),
                 static_cast<unsigned long long>(server.snapshots().Epoch()));
  }
  g_serve_instance = nullptr;
  return 0;
}

// ---------------------------------------------------------------------------
// abcs client
// ---------------------------------------------------------------------------

struct ClientArgs {
  std::string host = "127.0.0.1";
  long port = -1;
  bool ping = false;
  bool health = false;
  abcs::serve::WireMethod method = abcs::serve::WireMethod::kDelta;
  bool lower_side = false;
  uint32_t deadline_ms = 0;
  std::string batch_path;
  unsigned connections = 0;  ///< nonzero = soak mode
  double duration_s = 0.0;
  uint32_t q = 0, alpha = 0, beta = 0;
  bool single = false;
  /// Transport knobs, forwarded into ClientOptions for every mode.
  abcs::serve::ClientOptions transport;
  /// Chaos probe: pipeline this many copies of the single query, hold
  /// without reading for hold_ms, then drain — exercises the server's
  /// slow-client shedding.
  unsigned flood = 0;
  uint32_t hold_ms = 2000;
  struct UpdateSpec {
    abcs::serve::UpdateOp op = abcs::serve::UpdateOp::kCommit;
    uint32_t u = 0, v = 0;
    double weight = 0.0;
  };
  std::vector<UpdateSpec> updates;  ///< applied in command-line order
  std::string update_file;
};

bool ParseClientArgs(int argc, char** argv, ClientArgs* args) {
  std::vector<const char*> pos;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      args->host = argv[++i];
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      args->port = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--ping") == 0) {
      args->ping = true;
    } else if (std::strcmp(argv[i], "--health") == 0) {
      args->health = true;
    } else if (std::strcmp(argv[i], "--connect-timeout-ms") == 0 &&
               i + 1 < argc) {
      args->transport.connect_timeout_ms =
          static_cast<uint32_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--io-timeout-ms") == 0 && i + 1 < argc) {
      args->transport.io_timeout_ms =
          static_cast<uint32_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
      const long n = std::atol(argv[++i]);
      if (n < 1) return false;
      args->transport.max_attempts = static_cast<uint32_t>(n);
    } else if (std::strcmp(argv[i], "--rcvbuf-kb") == 0 && i + 1 < argc) {
      const long n = std::atol(argv[++i]);
      if (n < 1) return false;
      args->transport.so_rcvbuf = static_cast<uint32_t>(n) << 10;
    } else if (std::strcmp(argv[i], "--flood") == 0 && i + 1 < argc) {
      const long n = std::atol(argv[++i]);
      if (n < 1) return false;
      args->flood = static_cast<unsigned>(n);
    } else if (std::strcmp(argv[i], "--hold-ms") == 0 && i + 1 < argc) {
      args->hold_ms = static_cast<uint32_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--method") == 0 && i + 1 < argc) {
      if (!abcs::serve::ParseWireMethod(argv[++i], &args->method)) {
        return false;
      }
    } else if (std::strcmp(argv[i], "--side") == 0 && i + 1 < argc) {
      args->lower_side = (argv[++i][0] == 'l');
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      args->deadline_ms = static_cast<uint32_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      args->batch_path = argv[++i];
    } else if (std::strcmp(argv[i], "--connections") == 0 && i + 1 < argc) {
      args->connections = static_cast<unsigned>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      args->duration_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--insert") == 0 && i + 3 < argc) {
      ClientArgs::UpdateSpec s;
      s.op = abcs::serve::UpdateOp::kInsertEdge;
      s.u = static_cast<uint32_t>(std::atol(argv[++i]));
      s.v = static_cast<uint32_t>(std::atol(argv[++i]));
      s.weight = std::atof(argv[++i]);
      args->updates.push_back(s);
    } else if (std::strcmp(argv[i], "--remove") == 0 && i + 2 < argc) {
      ClientArgs::UpdateSpec s;
      s.op = abcs::serve::UpdateOp::kRemoveEdge;
      s.u = static_cast<uint32_t>(std::atol(argv[++i]));
      s.v = static_cast<uint32_t>(std::atol(argv[++i]));
      args->updates.push_back(s);
    } else if (std::strcmp(argv[i], "--reweight") == 0 && i + 3 < argc) {
      ClientArgs::UpdateSpec s;
      s.op = abcs::serve::UpdateOp::kReweightEdge;
      s.u = static_cast<uint32_t>(std::atol(argv[++i]));
      s.v = static_cast<uint32_t>(std::atol(argv[++i]));
      s.weight = std::atof(argv[++i]);
      args->updates.push_back(s);
    } else if (std::strcmp(argv[i], "--commit") == 0) {
      args->updates.push_back(ClientArgs::UpdateSpec{});  // kCommit
    } else if (std::strcmp(argv[i], "--update-file") == 0 && i + 1 < argc) {
      args->update_file = argv[++i];
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      return false;
    } else {
      pos.push_back(argv[i]);
    }
  }
  if (args->port < 1 || args->port > 65535) return false;
  const bool update_mode = !args->updates.empty() || !args->update_file.empty();
  if (args->ping || args->health) {
    return !(args->ping && args->health) && pos.empty() &&
           args->batch_path.empty() && !update_mode && args->flood == 0;
  }
  if (update_mode) {
    // One mode per invocation; a file and inline ops would have an
    // ambiguous ordering.
    return pos.empty() && args->batch_path.empty() && args->flood == 0 &&
           (args->updates.empty() || args->update_file.empty());
  }
  if (!args->batch_path.empty()) {
    if (!pos.empty() || args->flood != 0) return false;
    // Soak needs both knobs; a lone --connections or --duration is a typo.
    if ((args->connections != 0) != (args->duration_s > 0)) return false;
    return true;
  }
  if (pos.size() != 3 || args->connections != 0 || args->duration_s > 0) {
    return false;
  }
  args->single = true;
  args->q = static_cast<uint32_t>(std::atol(pos[0]));
  args->alpha = static_cast<uint32_t>(std::atol(pos[1]));
  args->beta = static_cast<uint32_t>(std::atol(pos[2]));
  return args->alpha >= 1 && args->beta >= 1;
}

// Client-side batch parse: same `q alpha beta [u|l]` lines as the CLI's
// batch runner, but kept layer-local — the server owns the id space and
// range checks (kInvalidVertex).
abcs::Status ParseClientBatch(const std::string& path, const ClientArgs& args,
                              std::vector<abcs::serve::WireRequest>* out) {
  std::ifstream in(path);
  if (!in) return abcs::Status::NotFound("cannot open batch file " + path);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#' ||
        line[first] == '%') {
      continue;
    }
    unsigned long id = 0, alpha = 0, beta = 0;
    char side = args.lower_side ? 'l' : 'u';
    char junk[2];
    const int got = std::sscanf(line.c_str(), "%lu %lu %lu %c %1s", &id,
                                &alpha, &beta, &side, junk);
    if (got < 3 || got > 4 || alpha == 0 || beta == 0 ||
        alpha > 0xffffffffUL || beta > 0xffffffffUL ||
        (side != 'u' && side != 'l')) {
      return abcs::Status::InvalidArgument(
          path + ":" + std::to_string(lineno) + ": expected `q alpha beta " +
          "[u|l]`, got `" + line + "`");
    }
    abcs::serve::WireRequest req;
    req.method = args.method;
    req.lower_side = (side == 'l');
    req.q = static_cast<uint32_t>(id);
    req.alpha = static_cast<uint32_t>(alpha);
    req.beta = static_cast<uint32_t>(beta);
    req.deadline_ms = args.deadline_ms;
    out->push_back(req);
  }
  return abcs::Status::OK();
}

const char* ClientKernelName(uint8_t kernel) {
  switch (kernel) {
    case 1:
      return "peel";
    case 2:
      return "expand";
    case 3:
      return "binary";
    default:
      return "auto";
  }
}

// Prints one response line in the `abcs query --batch` stdout format (minus
// the touched-arcs counters, which the wire protocol deliberately omits).
void PrintClientResponse(std::size_t i, const abcs::serve::WireRequest& req,
                         const abcs::serve::WireResponse& resp) {
  if (resp.status != abcs::serve::WireStatus::kOk) {
    std::printf("%zu %s%u (%u,%u) error=%s\n", i, req.lower_side ? "l" : "u",
                req.q, req.alpha, req.beta,
                abcs::serve::WireStatusName(resp.status));
    return;
  }
  if (abcs::serve::IsScsMethod(req.method)) {
    if (resp.found) {
      std::printf("%zu %s%u (%u,%u) |C|=%u |R|=%u f=%g kernel=%s\n", i,
                  req.lower_side ? "l" : "u", req.q, req.alpha, req.beta,
                  resp.num_edges, resp.result_edges, resp.significance,
                  ClientKernelName(resp.kernel));
    } else {
      std::printf("%zu %s%u (%u,%u) |C|=%u none\n", i,
                  req.lower_side ? "l" : "u", req.q, req.alpha, req.beta,
                  resp.num_edges);
    }
  } else {
    std::printf("%zu %s%u (%u,%u) |E|=%u\n", i, req.lower_side ? "l" : "u",
                req.q, req.alpha, req.beta, resp.num_edges);
  }
}

// Prints transport telemetry when anything eventful happened (stderr, so
// stdout stays bit-comparable with the offline batch runner).
void PrintClientStats(const abcs::serve::Client& client) {
  const abcs::serve::ClientStats& cs = client.stats();
  if (cs.reconnects == 0 && cs.retries == 0 && cs.timeouts == 0) return;
  std::fprintf(stderr, "# client: reconnects=%llu retries=%llu timeouts=%llu\n",
               static_cast<unsigned long long>(cs.reconnects),
               static_cast<unsigned long long>(cs.retries),
               static_cast<unsigned long long>(cs.timeouts));
}

int RunClientBatch(const ClientArgs& args,
                   const std::vector<abcs::serve::WireRequest>& requests) {
  abcs::serve::Client client(args.transport);
  abcs::Status st = client.Connect(args.host, static_cast<uint16_t>(args.port));
  if (!st.ok()) return Fail(st);
  // One pipelined burst; CallAll resumes the unanswered suffix across
  // reconnects and the server's sequencer guarantees request order.
  std::vector<abcs::serve::WireResponse> responses;
  st = client.CallAll(requests, &responses);
  PrintClientStats(client);
  if (!st.ok()) return Fail(st);

  const bool scs = abcs::serve::IsScsMethod(args.method);
  if (scs) {
    // Matches RunScsBatchQueries' header: algo strips the "scs-" prefix.
    std::printf("# batch of %zu scs queries, algo=%s\n", requests.size(),
                abcs::serve::WireMethodName(args.method) + 4);
  } else {
    std::printf("# batch of %zu queries, method=%s\n", requests.size(),
                abcs::serve::WireMethodName(args.method));
  }
  uint64_t errors = 0, nonempty = 0, total_edges = 0;
  uint64_t found = 0, total_c = 0, total_r = 0, memo_hits = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const abcs::serve::WireResponse& resp = responses[i];
    PrintClientResponse(i, requests[i], resp);
    if (resp.status != abcs::serve::WireStatus::kOk) {
      ++errors;
      continue;
    }
    memo_hits += resp.memo_hit ? 1 : 0;
    if (scs) {
      found += resp.found ? 1 : 0;
      total_c += resp.num_edges;
      total_r += resp.result_edges;
    } else {
      nonempty += resp.found ? 1 : 0;
      total_edges += resp.num_edges;
    }
  }
  if (scs) {
    std::printf("# found=%llu total_C=%llu total_R=%llu\n",
                static_cast<unsigned long long>(found),
                static_cast<unsigned long long>(total_c),
                static_cast<unsigned long long>(total_r));
  } else {
    std::printf("# nonempty=%llu total_edges=%llu\n",
                static_cast<unsigned long long>(nonempty),
                static_cast<unsigned long long>(total_edges));
  }
  std::fprintf(stderr, "# errors=%llu memo_hits=%llu\n",
               static_cast<unsigned long long>(errors),
               static_cast<unsigned long long>(memo_hits));
  return errors == 0 ? 0 : 1;
}

int RunClientSoak(const ClientArgs& args,
                  const std::vector<abcs::serve::WireRequest>& requests) {
  std::atomic<uint64_t> total_ok{0}, total_errors{0}, memo_hits{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(args.connections);
  for (unsigned c = 0; c < args.connections; ++c) {
    threads.emplace_back([&, c] {
      abcs::serve::Client client(args.transport);
      if (!client.Connect(args.host, static_cast<uint16_t>(args.port)).ok()) {
        total_errors.fetch_add(1);
        return;
      }
      // Offset each connection's start so they don't march in lockstep
      // over the same keys (more realistic memo + steal pressure).
      std::size_t i = (c * 7919) % requests.size();
      while (!stop.load(std::memory_order_relaxed)) {
        abcs::serve::WireResponse resp;
        const abcs::Status st = client.Call(requests[i], &resp);
        if (!st.ok() || resp.status != abcs::serve::WireStatus::kOk) {
          total_errors.fetch_add(1);
        } else {
          total_ok.fetch_add(1);
          memo_hits.fetch_add(resp.memo_hit ? 1 : 0);
        }
        i = (i + 1) % requests.size();
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long>(args.duration_s * 1000)));
  stop.store(true);
  for (std::thread& t : threads) t.join();
  std::printf("# soak connections=%u duration=%.1fs ok=%llu errors=%llu "
              "memo_hits=%llu\n",
              args.connections, args.duration_s,
              static_cast<unsigned long long>(total_ok.load()),
              static_cast<unsigned long long>(total_errors.load()),
              static_cast<unsigned long long>(memo_hits.load()));
  return total_errors.load() == 0 ? 0 : 1;
}

// Update-file lines, one op each: `i u v w`, `r u v`, `w u v w`, `c`
// (layer-local ids; % and # comment lines ignored).
abcs::Status ParseUpdateFile(const std::string& path,
                             std::vector<ClientArgs::UpdateSpec>* out) {
  std::ifstream in(path);
  if (!in) return abcs::Status::NotFound("cannot open update file " + path);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#' ||
        line[first] == '%') {
      continue;
    }
    ClientArgs::UpdateSpec s;
    char tag = 0;
    char junk[2];
    unsigned long u = 0, v = 0;
    double w = 0.0;
    bool ok = false;
    switch (line[first]) {
      case 'i':
      case 'w':
        ok = std::sscanf(line.c_str(), " %c %lu %lu %lf %1s", &tag, &u, &v,
                         &w, junk) == 4;
        s.op = line[first] == 'i' ? abcs::serve::UpdateOp::kInsertEdge
                                  : abcs::serve::UpdateOp::kReweightEdge;
        break;
      case 'r':
        ok = std::sscanf(line.c_str(), " %c %lu %lu %1s", &tag, &u, &v,
                         junk) == 3;
        s.op = abcs::serve::UpdateOp::kRemoveEdge;
        break;
      case 'c':
        ok = std::sscanf(line.c_str(), " %c %1s", &tag, junk) == 1;
        s.op = abcs::serve::UpdateOp::kCommit;
        break;
      default:
        break;
    }
    if (!ok || u > 0xffffffffUL || v > 0xffffffffUL) {
      return abcs::Status::InvalidArgument(
          path + ":" + std::to_string(lineno) +
          ": expected `i u v w`, `r u v`, `w u v w` or `c`, got `" + line +
          "`");
    }
    s.u = static_cast<uint32_t>(u);
    s.v = static_cast<uint32_t>(v);
    s.weight = w;
    out->push_back(s);
  }
  return abcs::Status::OK();
}

int RunClientUpdates(const ClientArgs& args,
                     const std::vector<ClientArgs::UpdateSpec>& updates) {
  abcs::serve::Client client(args.transport);
  abcs::Status st = client.Connect(args.host, static_cast<uint16_t>(args.port));
  if (!st.ok()) return Fail(st);
  int failures = 0;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const ClientArgs::UpdateSpec& s = updates[i];
    abcs::serve::WireResponse resp;
    st = client.Update(s.op, s.u, s.v, s.weight, &resp);
    if (!st.ok()) return Fail(st);
    if (s.op == abcs::serve::UpdateOp::kCommit) {
      std::printf("%zu commit %s epoch=%llu\n", i,
                  abcs::serve::WireStatusName(resp.status),
                  static_cast<unsigned long long>(resp.epoch));
    } else if (s.op == abcs::serve::UpdateOp::kRemoveEdge) {
      std::printf("%zu %s %u %u %s\n", i, abcs::serve::UpdateOpName(s.op),
                  s.u, s.v, abcs::serve::WireStatusName(resp.status));
    } else {
      std::printf("%zu %s %u %u %g %s\n", i, abcs::serve::UpdateOpName(s.op),
                  s.u, s.v, s.weight,
                  abcs::serve::WireStatusName(resp.status));
    }
    if (resp.status != abcs::serve::WireStatus::kOk) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

// Slow-client chaos probe: pipeline a burst, then deliberately stop
// reading for hold_ms so responses pile up in the server's bounded
// per-connection buffer (and the kernel windows). A healthy server sheds
// this connection instead of stalling a worker; both outcomes print and
// exit 0 — the server's slow_dropped counter is the assertion surface.
int RunClientFlood(const ClientArgs& args) {
  abcs::serve::WireRequest req;
  req.method = args.method;
  req.lower_side = args.lower_side;
  req.q = args.q;
  req.alpha = args.alpha;
  req.beta = args.beta;
  req.deadline_ms = args.deadline_ms;
  abcs::serve::Client client(args.transport);
  abcs::Status st = client.Connect(args.host, static_cast<uint16_t>(args.port));
  if (!st.ok()) return Fail(st);
  const std::vector<abcs::serve::WireRequest> burst(args.flood, req);
  st = client.SendAll(burst);
  if (st.ok()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(args.hold_ms));
    std::vector<abcs::serve::WireResponse> responses;
    st = client.ReceiveAll(burst.size(), &responses);
    if (st.ok()) {
      std::printf("# flood sent=%u held=%ums drained=%zu (not shed)\n",
                  args.flood, args.hold_ms, responses.size());
      return 0;
    }
  }
  std::printf("# flood sent=%u held=%ums shed: %s\n", args.flood, args.hold_ms,
              st.ToString().c_str());
  return 0;
}

int CmdClient(const ClientArgs& args) {
  if (args.ping) {
    abcs::serve::Client client(args.transport);
    abcs::Status st =
        client.Connect(args.host, static_cast<uint16_t>(args.port));
    uint64_t epoch = 0;
    if (st.ok()) st = client.Ping(&epoch);
    if (!st.ok()) return Fail(st);
    std::printf("pong epoch=%llu\n", static_cast<unsigned long long>(epoch));
    return 0;
  }
  if (args.health) {
    abcs::serve::Client client(args.transport);
    abcs::Status st =
        client.Connect(args.host, static_cast<uint16_t>(args.port));
    abcs::serve::WireHealth h;
    if (st.ok()) st = client.Health(&h);
    if (!st.ok()) return Fail(st);
    std::printf(
        "health state=%s queue=%u inflight=%u conns=%u slow_dropped=%u "
        "epoch=%llu memo_hits=%llu requests=%llu\n",
        abcs::serve::HealthStateName(h.state), h.queue_depth, h.inflight,
        h.connections, h.slow_client_dropped,
        static_cast<unsigned long long>(h.epoch),
        static_cast<unsigned long long>(h.memo_hits),
        static_cast<unsigned long long>(h.requests));
    // Distinct exit codes for probe scripting: 0 = live, 2 = reachable
    // but degraded/draining, 1 = unreachable (the Fail path above).
    return h.state == abcs::serve::HealthState::kLive ? 0 : 2;
  }
  if (!args.updates.empty() || !args.update_file.empty()) {
    std::vector<ClientArgs::UpdateSpec> updates = args.updates;
    if (!args.update_file.empty()) {
      const abcs::Status st = ParseUpdateFile(args.update_file, &updates);
      if (!st.ok()) return Fail(st);
    }
    if (updates.empty()) {
      return Fail(abcs::Status::InvalidArgument("empty update file"));
    }
    return RunClientUpdates(args, updates);
  }
  if (!args.batch_path.empty()) {
    std::vector<abcs::serve::WireRequest> requests;
    const abcs::Status st = ParseClientBatch(args.batch_path, args, &requests);
    if (!st.ok()) return Fail(st);
    if (requests.empty()) {
      return Fail(abcs::Status::InvalidArgument("empty batch file"));
    }
    return args.connections > 0 ? RunClientSoak(args, requests)
                                : RunClientBatch(args, requests);
  }
  if (args.flood > 0) return RunClientFlood(args);
  abcs::serve::WireRequest req;
  req.method = args.method;
  req.lower_side = args.lower_side;
  req.q = args.q;
  req.alpha = args.alpha;
  req.beta = args.beta;
  req.deadline_ms = args.deadline_ms;
  abcs::serve::Client client(args.transport);
  abcs::Status st = client.Connect(args.host, static_cast<uint16_t>(args.port));
  if (!st.ok()) return Fail(st);
  abcs::serve::WireResponse resp;
  st = client.Call(req, &resp);
  PrintClientStats(client);
  if (!st.ok()) return Fail(st);
  PrintClientResponse(0, req, resp);
  return resp.status == abcs::serve::WireStatus::kOk ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Crash/short-write fault points for the recovery tests; a no-op branch
  // unless ABCS_FAULT_INJECT is set.
  abcs::FaultInjector::Instance().ArmFromEnv();
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "stats" && argc == 3) return CmdStats(argv[2]);
  if (cmd == "index" || cmd == "build") {
    // `abcs index <graph> <bundle-out>` or `abcs index <graph> --out FILE`,
    // optionally `--compress[=none|fast|max]` (bare --compress = max).
    std::string graph_path, out_path;
    abcs::BundleCompression compression = abcs::BundleCompression::kNone;
    bool ok = true;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
        ok = ok && out_path.empty();
        out_path = argv[++i];
      } else if (std::strcmp(argv[i], "--compress") == 0) {
        compression = abcs::BundleCompression::kMax;
      } else if (std::strncmp(argv[i], "--compress=", 11) == 0) {
        const std::string level = argv[i] + 11;
        if (level == "none") {
          compression = abcs::BundleCompression::kNone;
        } else if (level == "fast") {
          compression = abcs::BundleCompression::kFast;
        } else if (level == "max") {
          compression = abcs::BundleCompression::kMax;
        } else {
          ok = false;
        }
      } else if (std::strncmp(argv[i], "--", 2) == 0) {
        ok = false;
      } else if (graph_path.empty()) {
        graph_path = argv[i];
      } else if (out_path.empty()) {
        out_path = argv[i];
      } else {
        ok = false;
      }
    }
    if (!ok || graph_path.empty() || out_path.empty()) return Usage();
    return CmdIndex(graph_path, out_path, compression);
  }
  if (cmd == "inspect" && argc == 3) return CmdInspect(argv[2]);
  if (cmd == "gen" && argc == 4) return CmdGen(argv[2], argv[3]);
  if (cmd == "serve") {
    ServeArgs args;
    if (!ParseServeArgs(argc, argv, &args)) return Usage();
    return CmdServe(args);
  }
  if (cmd == "client") {
    ClientArgs args;
    if (!ParseClientArgs(argc, argv, &args)) return Usage();
    return CmdClient(args);
  }
  if (cmd == "query" || cmd == "scs" || cmd == "profile") {
    QueryArgs args;
    if (!ParseQueryArgs(argc, argv, &args)) return Usage();
    // Batch mode (and its flags) exist only for `query`; --algo only for
    // `scs` — a silently-ignored flag would mask a mistyped command.
    if (cmd != "query" && (!args.batch_path.empty() || args.batch_only_flags)) {
      return Usage();
    }
    if (cmd != "scs" && args.algo_set) return Usage();
    if (cmd == "query") return CmdQuery(args);
    if (cmd == "scs") return CmdScs(args);
    return CmdProfile(args);
  }
  return Usage();
}
