// abcs command-line tool: build/save/load the I_δ index and run community
// queries on weighted bipartite edge lists.
//
// Usage:
//   abcs stats  <graph>                       print dataset statistics
//   abcs index  <graph> <index-out>           build and persist I_δ
//   abcs query  <graph> <q> <alpha> <beta> [--index FILE] [--side u|l]
//                                             print C_{α,β}(q)
//   abcs scs    <graph> <q> <alpha> <beta> [--index FILE] [--side u|l]
//               [--algo peel|expand|binary|baseline]
//                                             print the significant community
//   abcs profile <graph> <q> <max-alpha> <max-beta> [--index FILE]
//               [--side u|l]                  print f(R) over the (α,β) grid
//   abcs gen    <name> <graph-out>            write a registry dataset
//
// <graph> is a whitespace edge list `u v [w]` with 0-based layer-local ids
// (lines starting with % or # ignored). <q> is a layer-local id; --side
// selects the layer (default: u).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "abcore/degeneracy.h"
#include "abcore/peeling.h"
#include "common/timer.h"
#include "core/delta_index.h"
#include "core/index_io.h"
#include "core/scs_baseline.h"
#include "core/scs_binary.h"
#include "core/scs_expand.h"
#include "core/profile.h"
#include "core/scs_peel.h"
#include "graph/datasets.h"
#include "graph/graph_io.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  abcs stats <graph>\n"
               "  abcs index <graph> <index-out>\n"
               "  abcs query <graph> <q> <alpha> <beta> [--index FILE] "
               "[--side u|l]\n"
               "  abcs scs   <graph> <q> <alpha> <beta> [--index FILE] "
               "[--side u|l] [--algo peel|expand|binary|baseline]\n"
               "  abcs gen   <name> <graph-out>\n");
  return 2;
}

int Fail(const abcs::Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

struct QueryArgs {
  std::string graph_path;
  abcs::VertexId q = 0;
  uint32_t alpha = 0, beta = 0;
  std::string index_path;
  bool lower_side = false;
  std::string algo = "peel";
};

bool ParseQueryArgs(int argc, char** argv, QueryArgs* args) {
  if (argc < 6) return false;
  args->graph_path = argv[2];
  args->q = static_cast<abcs::VertexId>(std::atol(argv[3]));
  args->alpha = static_cast<uint32_t>(std::atol(argv[4]));
  args->beta = static_cast<uint32_t>(std::atol(argv[5]));
  for (int i = 6; i < argc; ++i) {
    if (std::strcmp(argv[i], "--index") == 0 && i + 1 < argc) {
      args->index_path = argv[++i];
    } else if (std::strcmp(argv[i], "--side") == 0 && i + 1 < argc) {
      args->lower_side = (argv[++i][0] == 'l');
    } else if (std::strcmp(argv[i], "--algo") == 0 && i + 1 < argc) {
      args->algo = argv[++i];
    } else {
      return false;
    }
  }
  return args->alpha >= 1 && args->beta >= 1;
}

abcs::Status GetIndex(const QueryArgs& args, const abcs::BipartiteGraph& g,
                      abcs::DeltaIndex* index) {
  if (!args.index_path.empty()) {
    return abcs::LoadDeltaIndex(args.index_path, g, index);
  }
  *index = abcs::DeltaIndex::Build(g);
  return abcs::Status::OK();
}

void PrintSubgraph(const abcs::BipartiteGraph& g, const abcs::Subgraph& sub) {
  const abcs::SubgraphStats stats = abcs::ComputeStats(g, sub);
  std::printf("# |E|=%zu |U|=%u |L|=%u min_w=%g avg_w=%g\n", sub.Size(),
              stats.num_upper, stats.num_lower, stats.min_weight,
              stats.avg_weight);
  for (abcs::EdgeId e : sub.edges) {
    const abcs::Edge& ed = g.GetEdge(e);
    std::printf("%u %u %g\n", ed.u, ed.v - g.NumUpper(), ed.w);
  }
}

int CmdStats(const std::string& path) {
  abcs::BipartiteGraph g;
  abcs::Status st = abcs::LoadEdgeList(path, &g, /*zero_based=*/true);
  if (!st.ok()) return Fail(st);
  const uint32_t delta = abcs::Degeneracy(g);
  const abcs::CoreResult rdd = abcs::ComputeAlphaBetaCore(g, delta, delta);
  std::printf("|E|=%u |U|=%u |L|=%u delta=%u amax=%u bmax=%u |Rdd|=%u\n",
              g.NumEdges(), g.NumUpper(), g.NumLower(), delta,
              g.MaxUpperDegree(), g.MaxLowerDegree(), rdd.num_edges);
  return 0;
}

int CmdIndex(const std::string& graph_path, const std::string& out_path) {
  abcs::BipartiteGraph g;
  abcs::Status st = abcs::LoadEdgeList(graph_path, &g, /*zero_based=*/true);
  if (!st.ok()) return Fail(st);
  abcs::Timer timer;
  const abcs::DeltaIndex index =
      abcs::DeltaIndex::Build(g, nullptr, /*num_threads=*/0);
  std::printf("built I_delta (delta=%u) in %.3fs, %.2f MB\n", index.delta(),
              timer.Seconds(),
              static_cast<double>(index.MemoryBytes()) / (1024.0 * 1024.0));
  st = abcs::SaveDeltaIndex(index, g, out_path);
  if (!st.ok()) return Fail(st);
  std::printf("saved to %s\n", out_path.c_str());
  return 0;
}

int CmdQuery(const QueryArgs& args) {
  abcs::BipartiteGraph g;
  abcs::Status st =
      abcs::LoadEdgeList(args.graph_path, &g, /*zero_based=*/true);
  if (!st.ok()) return Fail(st);
  const abcs::VertexId q = args.lower_side ? g.NumUpper() + args.q : args.q;
  if (q >= g.NumVertices()) {
    return Fail(abcs::Status::InvalidArgument("query vertex out of range"));
  }
  abcs::DeltaIndex index;
  st = GetIndex(args, g, &index);
  if (!st.ok()) return Fail(st);
  abcs::Timer timer;
  const abcs::Subgraph c = index.QueryCommunity(q, args.alpha, args.beta);
  std::printf("# (%u,%u)-community of %s%u in %.2e s\n", args.alpha,
              args.beta, args.lower_side ? "l" : "u", args.q,
              timer.Seconds());
  PrintSubgraph(g, c);
  return 0;
}

int CmdScs(const QueryArgs& args) {
  abcs::BipartiteGraph g;
  abcs::Status st =
      abcs::LoadEdgeList(args.graph_path, &g, /*zero_based=*/true);
  if (!st.ok()) return Fail(st);
  const abcs::VertexId q = args.lower_side ? g.NumUpper() + args.q : args.q;
  if (q >= g.NumVertices()) {
    return Fail(abcs::Status::InvalidArgument("query vertex out of range"));
  }
  abcs::DeltaIndex index;
  st = GetIndex(args, g, &index);
  if (!st.ok()) return Fail(st);

  abcs::Timer timer;
  abcs::ScsResult result;
  if (args.algo == "baseline") {
    result = abcs::ScsBaseline(g, q, args.alpha, args.beta);
  } else {
    const abcs::Subgraph c = index.QueryCommunity(q, args.alpha, args.beta);
    if (args.algo == "peel") {
      result = abcs::ScsPeel(g, c, q, args.alpha, args.beta);
    } else if (args.algo == "expand") {
      result = abcs::ScsExpand(g, c, q, args.alpha, args.beta);
    } else if (args.algo == "binary") {
      result = abcs::ScsBinary(g, c, q, args.alpha, args.beta);
    } else {
      return Fail(abcs::Status::InvalidArgument("unknown --algo"));
    }
  }
  if (!result.found) {
    std::printf("# no significant (%u,%u)-community for this vertex\n",
                args.alpha, args.beta);
    return 0;
  }
  std::printf("# significant (%u,%u)-community, f(R)=%g, %s, %.2e s\n",
              args.alpha, args.beta, result.significance, args.algo.c_str(),
              timer.Seconds());
  PrintSubgraph(g, result.community);
  return 0;
}

int CmdProfile(const QueryArgs& args) {
  abcs::BipartiteGraph g;
  abcs::Status st =
      abcs::LoadEdgeList(args.graph_path, &g, /*zero_based=*/true);
  if (!st.ok()) return Fail(st);
  const abcs::VertexId q = args.lower_side ? g.NumUpper() + args.q : args.q;
  if (q >= g.NumVertices()) {
    return Fail(abcs::Status::InvalidArgument("query vertex out of range"));
  }
  abcs::DeltaIndex index;
  st = GetIndex(args, g, &index);
  if (!st.ok()) return Fail(st);
  // For `profile`, alpha/beta play the role of grid bounds.
  const abcs::SignificanceProfile profile = abcs::ComputeSignificanceProfile(
      g, index, q, args.alpha, args.beta);
  std::printf("# f(R) for %s%u; rows alpha=1..%u, cols beta=1..%u "
              "('-' = no community)\n",
              args.lower_side ? "l" : "u", args.q, args.alpha, args.beta);
  for (uint32_t a = 1; a <= args.alpha; ++a) {
    for (uint32_t b = 1; b <= args.beta; ++b) {
      if (profile.ExistsAt(a, b)) {
        std::printf("%8.3g", profile.At(a, b));
      } else {
        std::printf("%8s", "-");
      }
    }
    std::printf("\n");
  }
  return 0;
}

int CmdGen(const std::string& name, const std::string& out_path) {
  const abcs::DatasetSpec* spec = abcs::FindDataset(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown dataset %s; available:", name.c_str());
    for (const abcs::DatasetSpec& s : abcs::AllDatasets()) {
      std::fprintf(stderr, " %s", s.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }
  abcs::BipartiteGraph g;
  abcs::Status st = abcs::MakeDataset(*spec, &g);
  if (!st.ok()) return Fail(st);
  st = abcs::SaveEdgeList(g, out_path);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s: %u edges\n", out_path.c_str(), g.NumEdges());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "stats" && argc == 3) return CmdStats(argv[2]);
  if (cmd == "index" && argc == 4) return CmdIndex(argv[2], argv[3]);
  if (cmd == "gen" && argc == 4) return CmdGen(argv[2], argv[3]);
  if (cmd == "query" || cmd == "scs" || cmd == "profile") {
    QueryArgs args;
    if (!ParseQueryArgs(argc, argv, &args)) return Usage();
    if (cmd == "query") return CmdQuery(args);
    if (cmd == "scs") return CmdScs(args);
    return CmdProfile(args);
  }
  return Usage();
}
