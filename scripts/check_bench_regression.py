#!/usr/bin/env python3
"""Warn-only bench regression check.

Diffs the per-row medians of a fresh bench JSON (BENCH_scs.json,
BENCH_query.json, BENCH_serve.json) against a committed baseline and prints
a GitHub-flavored markdown summary. Rows are matched on --keys; a row
regresses when

    current > baseline * (1 + tolerance)

or, with --higher-is-better (throughput metrics such as achieved_qps),

    current < baseline * (1 - tolerance)

The tolerance band is deliberately wide: the committed baselines were
recorded on a developer box, CI runners differ in both absolute speed and
noise, and this step exists to make *large* SCS/query regressions visible
in the job summary — not to gate merges. The exit code is always 0.

Usage:
  check_bench_regression.py --current BENCH_scs.json \
      --baseline bench/baselines/BENCH_scs.baseline.json \
      --keys dataset,weights,kernel --metric median_us \
      --tolerance 0.5 --label "SCS kernels"
"""

import argparse
import json
import sys


def load_rows(path, keys, metric):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        return None, f"cannot read {path}: {e}"
    rows = {}
    for row in data.get("results", []):
        if any(k not in row for k in keys) or metric not in row:
            continue
        rows[tuple(str(row[k]) for k in keys)] = float(row[metric])
    return rows, None


def main():
    p = argparse.ArgumentParser()
    p.add_argument("--current", required=True)
    p.add_argument("--baseline", required=True)
    p.add_argument("--keys", required=True)
    p.add_argument("--metric", required=True)
    p.add_argument("--tolerance", type=float, default=0.5)
    p.add_argument("--label", default="bench")
    p.add_argument(
        "--higher-is-better",
        action="store_true",
        help="flag rows where current < baseline * (1 - tolerance) "
        "(for throughput metrics)",
    )
    args = p.parse_args()
    keys = args.keys.split(",")

    current, err = load_rows(args.current, keys, args.metric)
    if err:
        print(f"### {args.label}: perf check skipped\n\n{err}\n")
        return 0
    baseline, err = load_rows(args.baseline, keys, args.metric)
    if err:
        print(f"### {args.label}: perf check skipped\n\n{err}\n")
        return 0

    regressions = []
    compared = 0
    for key, base_value in sorted(baseline.items()):
        if key not in current or base_value <= 0:
            continue
        compared += 1
        ratio = current[key] / base_value
        if args.higher_is_better:
            regressed = ratio < 1.0 - args.tolerance
        else:
            regressed = ratio > 1.0 + args.tolerance
        if regressed:
            regressions.append((key, base_value, current[key], ratio))

    band = f"-{args.tolerance:.0%}" if args.higher_is_better else f"+{args.tolerance:.0%}"
    direction = "under" if args.higher_is_better else "over"
    if not regressions:
        print(
            f"### {args.label}: {compared} rows at most {band} {direction} the "
            f"committed baseline ({args.metric}; improvements not flagged)\n"
        )
        return 0
    print(
        f"### ⚠️ {args.label}: {len(regressions)}/{compared} rows more than "
        f"{band} {direction} baseline ({args.metric}; warn-only, not gating)\n"
    )
    print("| " + " | ".join(keys) + " | baseline | current | ratio |")
    print("|" + "---|" * (len(keys) + 3))
    for key, base_value, cur_value, ratio in regressions:
        cells = " | ".join(key)
        print(f"| {cells} | {base_value:.1f} | {cur_value:.1f} | {ratio:.2f}x |")
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
