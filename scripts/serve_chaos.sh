#!/usr/bin/env bash
# Serve-tier chaos soak: drives the daemon and its client through the
# armed net.* fault points (io/fault_inject.h) and asserts the resilience
# contract end to end:
#   - server-side socket faults (short sends, resets, EINTR storms) are
#     invisible to a retrying client — batch output stays bit-identical
#     to the offline runner,
#   - client-side faults are absorbed by reconnect + resume,
#   - a writer delayed past the client's I/O deadline yields a typed
#     timeout with no retries, and succeeds once retries are allowed,
#   - a flooding never-reading client is shed (slow_dropped > 0) while a
#     paired fast client keeps completing within a hard latency bound,
#   - SIGTERM still drains cleanly (exit 0 + `# drained:` summary) with
#     faults armed.
#
# Usage: scripts/serve_chaos.sh [path/to/abcs]
#   CHAOS_SECONDS  minimum wall-clock spent on the fault-identity loop
#                  (default 10)
set -euo pipefail

ABCS=${1:-build/tools/abcs}
CHAOS_SECONDS=${CHAOS_SECONDS:-10}

if [[ ! -x "$ABCS" ]]; then
  echo "serve_chaos: abcs binary not found at $ABCS" >&2
  exit 1
fi

WORK=$(mktemp -d)
SERVER_PID=""
cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -KILL "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

GRAPH=$WORK/bs.txt
BUNDLE=$WORK/bs.idx
BATCH=$WORK/batch.txt

echo "== generating dataset and index"
"$ABCS" gen BS "$GRAPH" >/dev/null
"$ABCS" index "$GRAPH" "$BUNDLE" >/dev/null
cat > "$BATCH" <<'EOF'
1 2 2
0 1 1 l
2 3 3
5 2 3
3 2 2 u
7 1 2 l
4 4 4
EOF

# Offline ground truth, minus the touched-work diagnostics the wire
# protocol deliberately omits.
"$ABCS" query --bundle "$BUNDLE" --batch "$BATCH" --method delta \
  --threads 2 2>/dev/null \
  | sed -e 's/ touched=[0-9]*//' -e 's/ touched_arcs=[0-9]*//' \
  > "$WORK/offline.delta"

# start_server <log> <port-file> [extra serve args...]; sets SERVER_PID
# and PORT. ABCS_FAULT_INJECT in the environment arms the daemon.
start_server() {
  local log=$1 port_file=$2
  shift 2
  "$ABCS" serve --bundle "$BUNDLE" --port 0 --port-file "$port_file" \
    --threads 2 "$@" 2>"$log" &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [[ -s "$port_file" ]] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
      echo "serve_chaos: daemon died during startup:" >&2
      cat "$log" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [[ ! -s "$port_file" ]]; then
    echo "serve_chaos: daemon never wrote its port file" >&2
    exit 1
  fi
  PORT=$(cat "$port_file")
}

# stop_server <log>: SIGTERM, assert clean drain summary.
stop_server() {
  local log=$1
  kill -TERM "$SERVER_PID"
  local rc=0
  wait "$SERVER_PID" || rc=$?
  SERVER_PID=""
  if [[ "$rc" -ne 0 ]]; then
    echo "serve_chaos: daemon exited $rc after SIGTERM:" >&2
    cat "$log" >&2
    exit 1
  fi
  if ! grep -q "^# drained:" "$log"; then
    echo "serve_chaos: no drain summary in daemon log:" >&2
    cat "$log" >&2
    exit 1
  fi
  grep "^# drained:" "$log"
}

# ------------------------------------------------- server-side faults --
# Short sends split response frames, resets kill connections mid-stream,
# EINTR storms hit the reader — the retrying client must still produce
# bit-identical batch output, for at least CHAOS_SECONDS of wall clock.
echo "== phase 1: server-side socket faults vs retrying client"
ABCS_FAULT_INJECT="net.server_send=short:5@7,net.server_send=reset@41,net.server_recv=eintr:2@13" \
  start_server "$WORK/server1.log" "$WORK/port1"
"$ABCS" client --port "$PORT" --ping >/dev/null
"$ABCS" client --port "$PORT" --health | grep -q "state=live" || {
  echo "serve_chaos: health probe did not report live" >&2
  exit 1
}
PASSES=0
PHASE_START=$SECONDS
while (( SECONDS - PHASE_START < CHAOS_SECONDS )); do
  "$ABCS" client --port "$PORT" --batch "$BATCH" --method delta \
    --retries 6 2>"$WORK/client1.err" > "$WORK/served1"
  if ! diff -u "$WORK/offline.delta" "$WORK/served1"; then
    echo "serve_chaos: served batch diverges from offline under faults" >&2
    exit 1
  fi
  PASSES=$((PASSES + 1))
done
echo "   ok: $PASSES passes bit-identical under server-side faults"
stop_server "$WORK/server1.log"

# ------------------------------------------------- client-side faults --
# Resets and EINTR storms on the client's own socket calls; CallAll must
# reconnect and resume the unanswered suffix, output unchanged. The batch
# is big enough (200 requests ≈ 7 KiB of responses) that one attempt
# spans several recv syscalls, so the @3 reset cadence genuinely fires.
# NB: keep every EINTR storm shorter than its cadence (here 2 < 9) —
# a storm that spans the gap makes *every* syscall fail, forever.
echo "== phase 2: client-side socket faults (reconnect + resume)"
BATCH2=$WORK/batch2.txt
for i in $(seq 0 199); do
  echo "$((i % 8)) $((1 + i % 4)) $((1 + (i / 4) % 4))"
done > "$BATCH2"
"$ABCS" query --bundle "$BUNDLE" --batch "$BATCH2" --method delta \
  --threads 2 2>/dev/null \
  | sed -e 's/ touched=[0-9]*//' -e 's/ touched_arcs=[0-9]*//' \
  > "$WORK/offline2.delta"
start_server "$WORK/server2.log" "$WORK/port2"
: > "$WORK/client2.err"
for _ in $(seq 1 5); do
  ABCS_FAULT_INJECT="net.client_recv=reset@3,net.client_send=eintr:2@9" \
    "$ABCS" client --port "$PORT" --batch "$BATCH2" --method delta \
    --retries 8 2>>"$WORK/client2.err" > "$WORK/served2"
  if ! diff -u "$WORK/offline2.delta" "$WORK/served2"; then
    echo "serve_chaos: client-side faults leaked into batch output" >&2
    exit 1
  fi
done
# The injected resets really exercised the reconnect path.
if ! grep -qE "^# client: reconnects=[1-9]" "$WORK/client2.err"; then
  echo "serve_chaos: client never reported retry telemetry:" >&2
  cat "$WORK/client2.err" >&2
  exit 1
fi
echo "   ok: batch identical across injected client faults;" \
  "$(grep -m1 '^# client:' "$WORK/client2.err")"
stop_server "$WORK/server2.log"

# -------------------------------------------- delay past the deadline --
# A server writer delayed beyond the client's I/O deadline must produce
# a typed timeout (exit != 0, "timed out" on stderr) when retries are
# off, and a success when the deadline comfortably covers the delay.
echo "== phase 3: injected write delay vs client deadline"
ABCS_FAULT_INJECT="net.server_send=delay:400" \
  start_server "$WORK/server3.log" "$WORK/port3"
RC=0
timeout 30 "$ABCS" client --port "$PORT" 1 2 2 \
  --io-timeout-ms 100 --retries 1 >/dev/null 2>"$WORK/client3.err" || RC=$?
if [[ "$RC" -eq 0 || "$RC" -eq 124 ]]; then
  echo "serve_chaos: delayed writer did not yield a typed timeout (rc=$RC)" >&2
  cat "$WORK/client3.err" >&2
  exit 1
fi
grep -q "timed out" "$WORK/client3.err" || {
  echo "serve_chaos: timeout error is not typed:" >&2
  cat "$WORK/client3.err" >&2
  exit 1
}
# Same query with a deadline that covers the 400ms delay: succeeds.
timeout 30 "$ABCS" client --port "$PORT" 1 2 2 \
  --io-timeout-ms 2000 --retries 4 >/dev/null
echo "   ok: typed timeout without retries, success with headroom"
stop_server "$WORK/server3.log"

# ------------------------------------------------- slow-client shed --
# A flooding never-reading client must be shed (slow_dropped > 0 in the
# drain summary) while a paired fast client completes a batch within a
# hard wall-clock bound — one wedged peer cannot stall the tier.
echo "== phase 4: slow-client flood vs paired fast client"
start_server "$WORK/server4.log" "$WORK/port4" \
  --write-deadline-ms 200 --max-out-kb 32 --sndbuf-kb 8 --max-queue 16384
"$ABCS" client --port "$PORT" 1 1 1 --flood 5000 --hold-ms 3000 \
  --rcvbuf-kb 4 > "$WORK/flood.out" &
FLOOD_PID=$!
sleep 0.3  # let the flood wedge its connection first
FAST_START=$SECONDS
timeout 20 "$ABCS" client --port "$PORT" --batch "$BATCH" --method delta \
  2>/dev/null > "$WORK/served4"
FAST_ELAPSED=$((SECONDS - FAST_START))
if ! diff -u "$WORK/offline.delta" "$WORK/served4"; then
  echo "serve_chaos: fast client answers diverged beside a slow peer" >&2
  exit 1
fi
if (( FAST_ELAPSED > 5 )); then
  echo "serve_chaos: fast client took ${FAST_ELAPSED}s beside a slow peer" >&2
  exit 1
fi
wait "$FLOOD_PID" || true
cat "$WORK/flood.out"
stop_server "$WORK/server4.log"
if ! grep "^# drained:" "$WORK/server4.log" | grep -qE "slow_dropped=[1-9]"; then
  echo "serve_chaos: flood was never shed (slow_dropped=0):" >&2
  grep "^# drained:" "$WORK/server4.log" >&2
  exit 1
fi
echo "   ok: flood shed, fast client bounded (${FAST_ELAPSED}s)"

# ------------------------------------- slow-query storm vs deadlines --
# Every request in a 200-query online-method storm carries a 50 ms
# end-to-end budget. The contract: every request is answered (ok or
# deadline_exceeded — never silence), the daemon drains cleanly, and the
# watchdog never had to shoot a worker (stuck_cancelled=0): cooperative
# cancellation, not escalation, is what frees the workers.
echo "== phase 5: slow-query storm with 50ms deadlines"
start_server "$WORK/server5.log" "$WORK/port5"
RC=0
timeout 60 "$ABCS" client --port "$PORT" --batch "$BATCH2" \
  --method online --deadline-ms 50 2>/dev/null > "$WORK/served5" || RC=$?
if [[ "$RC" -eq 124 ]]; then
  echo "serve_chaos: deadline storm hung the client" >&2
  exit 1
fi
ANSWERED=$(grep -cv '^#' "$WORK/served5" || true)
if (( ANSWERED != 200 )); then
  echo "serve_chaos: storm answered $ANSWERED of 200 requests:" >&2
  tail -5 "$WORK/served5" >&2
  exit 1
fi
stop_server "$WORK/server5.log"
if ! grep "^# drained:" "$WORK/server5.log" | grep -q "stuck_cancelled=0"; then
  echo "serve_chaos: watchdog escalated during a cooperative storm:" >&2
  grep "^# drained:" "$WORK/server5.log" >&2
  exit 1
fi
echo "   ok: all 200 budgeted queries answered, zero stuck workers"

# ------------------------------------------------- live bundle scrub --
# The scrubber's own fault point corrupts the mapped bundle file before
# a verification pass (flipbyte at a payload offset). The daemon must
# detect the checksum mismatch, quarantine the file, recover from the
# .prev epoch and keep answering bit-identically to the offline runner.
echo "== phase 6: scrub detects injected bit-flip, recovers from .prev"
SCRUB_DIR=$WORK/scrub
mkdir -p "$SCRUB_DIR"
cp "$BUNDLE" "$SCRUB_DIR/bs.idx"
cp "$BUNDLE" "$SCRUB_DIR/bs.idx.prev"
BUNDLE_SIZE=$(stat -c %s "$SCRUB_DIR/bs.idx")
FLIP_AT=$((BUNDLE_SIZE / 2))
SAVED_BUNDLE=$BUNDLE
BUNDLE=$SCRUB_DIR/bs.idx
ABCS_FAULT_INJECT="scrub.before_pass=flipbyte:$FLIP_AT@1" \
  start_server "$WORK/server6.log" "$WORK/port6" --scrub-interval-ms 100
BUNDLE=$SAVED_BUNDLE
# Wait for the recovery publish: the health probe reports epoch=2 once
# the .prev bundle is serving (exit code ignored — the probe may catch
# the degraded window, which is itself correct behaviour).
RECOVERED=0
for _ in $(seq 1 100); do
  "$ABCS" client --port "$PORT" --health > "$WORK/health6" 2>/dev/null || true
  if grep -q "epoch=2" "$WORK/health6"; then
    RECOVERED=1
    break
  fi
  sleep 0.1
done
if (( ! RECOVERED )); then
  echo "serve_chaos: scrubber never recovered from the bit-flip:" >&2
  cat "$WORK/server6.log" >&2
  exit 1
fi
if [[ ! -e "$SCRUB_DIR/bs.idx.quarantined" ]]; then
  echo "serve_chaos: corrupt bundle was not quarantined" >&2
  exit 1
fi
# Served answers off the recovered epoch are bit-identical to offline.
timeout 30 "$ABCS" client --port "$PORT" --batch "$BATCH" --method delta \
  2>/dev/null > "$WORK/served6"
if ! diff -u "$WORK/offline.delta" "$WORK/served6"; then
  echo "serve_chaos: post-recovery answers diverge from offline" >&2
  exit 1
fi
stop_server "$WORK/server6.log"
if ! grep "^# scrub:" "$WORK/server6.log" | grep -qE "recoveries=[1-9]"; then
  echo "serve_chaos: drain summary reports no scrub recovery:" >&2
  cat "$WORK/server6.log" >&2
  exit 1
fi
echo "   ok: bit-flip detected, .prev recovery served bit-identical answers"

echo "serve_chaos: PASS"
