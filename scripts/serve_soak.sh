#!/usr/bin/env bash
# Serve-tier soak smoke: boots `abcs serve` on a generated BS graph, proves
# the daemon answers every method bit-identically to the offline batch
# runner, hammers it with concurrent clients for a sustained window, then
# SIGTERMs it and asserts a clean drain (exit 0, zero dropped requests).
#
# Usage: scripts/serve_soak.sh [path/to/abcs]
#   SOAK_SECONDS  soak window per run (default 30)
#   SOAK_CLIENTS  concurrent client connections (default 4)
#   SOAK_THREADS  server worker threads (default 4)
set -euo pipefail

ABCS=${1:-build/tools/abcs}
SOAK_SECONDS=${SOAK_SECONDS:-30}
SOAK_CLIENTS=${SOAK_CLIENTS:-4}
SOAK_THREADS=${SOAK_THREADS:-4}

if [[ ! -x "$ABCS" ]]; then
  echo "serve_soak: abcs binary not found at $ABCS" >&2
  exit 1
fi

WORK=$(mktemp -d)
SERVER_PID=""
cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -KILL "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

GRAPH=$WORK/bs.txt
BUNDLE=$WORK/bs.idx
PORT_FILE=$WORK/port
SERVER_LOG=$WORK/server.log

echo "== generating dataset and index"
"$ABCS" gen BS "$GRAPH" >/dev/null
"$ABCS" index "$GRAPH" "$BUNDLE" >/dev/null

echo "== starting daemon (threads=$SOAK_THREADS)"
"$ABCS" serve --bundle "$BUNDLE" --port 0 --port-file "$PORT_FILE" \
  --threads "$SOAK_THREADS" 2>"$SERVER_LOG" &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [[ -s "$PORT_FILE" ]] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "serve_soak: daemon died during startup:" >&2
    cat "$SERVER_LOG" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ ! -s "$PORT_FILE" ]]; then
  echo "serve_soak: daemon never wrote its port file" >&2
  exit 1
fi
PORT=$(cat "$PORT_FILE")
echo "== daemon on port $PORT"

"$ABCS" client --port "$PORT" --ping

# A small mixed batch touching both layers. The daemon must agree with the
# offline engine byte for byte per method, modulo the offline runner's
# touched-work diagnostics (a warm memo legitimately does no work, so the
# wire never carries work counters).
BATCH=$WORK/batch.txt
cat > "$BATCH" <<'EOF'
1 2 2
0 1 1 l
2 3 3
5 2 3
3 2 2 u
7 1 2 l
4 4 4
EOF

echo "== per-method identity: daemon vs offline batch runner"
for method in online bicore delta scs-auto scs-peel scs-expand scs-binary; do
  "$ABCS" query --bundle "$BUNDLE" --batch "$BATCH" --method "$method" \
    --threads 2 2>/dev/null \
    | sed -e 's/ touched=[0-9]*//' -e 's/ touched_arcs=[0-9]*//' \
    > "$WORK/offline.$method"
  # Twice: the second pass is all memo hits and must still be identical.
  for pass in cold warm; do
    "$ABCS" client --port "$PORT" --batch "$BATCH" --method "$method" \
      2>/dev/null > "$WORK/served.$method.$pass"
    if ! diff -u "$WORK/offline.$method" "$WORK/served.$method.$pass"; then
      echo "serve_soak: $method ($pass) diverges from offline batch" >&2
      exit 1
    fi
  done
  echo "   ok: $method (cold + memo-warm)"
done

echo "== soak: $SOAK_CLIENTS clients for ${SOAK_SECONDS}s"
"$ABCS" client --port "$PORT" --batch "$BATCH" --method delta \
  --connections "$SOAK_CLIENTS" --duration "$SOAK_SECONDS"

echo "== SIGTERM drain"
kill -TERM "$SERVER_PID"
DRAIN_RC=0
wait "$SERVER_PID" || DRAIN_RC=$?
SERVER_PID=""
if [[ "$DRAIN_RC" -ne 0 ]]; then
  echo "serve_soak: daemon exited $DRAIN_RC after SIGTERM:" >&2
  cat "$SERVER_LOG" >&2
  exit 1
fi
if ! grep -q "^# drained:" "$SERVER_LOG"; then
  echo "serve_soak: no drain summary in daemon log:" >&2
  cat "$SERVER_LOG" >&2
  exit 1
fi
grep "^# drained:" "$SERVER_LOG"
# Well-behaved clients must never trip the slow-client shed.
if ! grep "^# drained:" "$SERVER_LOG" | grep -q "slow_dropped=0 "; then
  echo "serve_soak: slow-client sheds under normal load" >&2
  exit 1
fi

# ---------------------------------------------------------------- live updates
# Second daemon phase: --enable-updates with a compaction target. Update
# traffic (reweight + remove/reinsert churn, committed in batches) runs
# against concurrent query clients; afterwards the daemon's post-update
# answers, the offline engine on a freshly indexed post-update graph, and
# the drain-time compacted bundle must all agree bit for bit.
SERVER2_LOG=$WORK/server2.log
PORT_FILE2=$WORK/port2
COMPACT=$WORK/compact.idx

echo "== starting update-enabled daemon"
"$ABCS" serve --bundle "$BUNDLE" --port 0 --port-file "$PORT_FILE2" \
  --threads "$SOAK_THREADS" --enable-updates --compact-path "$COMPACT" \
  2>"$SERVER2_LOG" &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [[ -s "$PORT_FILE2" ]] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "serve_soak: update daemon died during startup:" >&2
    cat "$SERVER2_LOG" >&2
    exit 1
  fi
  sleep 0.1
done
PORT2=$(cat "$PORT_FILE2")
echo "== update daemon on port $PORT2"

# Update traffic over edges known to exist (pulled from the generated
# edge list): each batch bumps one edge's weight by 1.5, churns it out
# and back at the new weight, then commits an epoch.
UPDATES=$WORK/updates.txt
POST_GRAPH=$WORK/bs_post.txt
POST_BUNDLE=$WORK/bs_post.idx
awk '!/^%/ {
  w = $3 + 1.5
  printf "w %s %s %.6f\nr %s %s\ni %s %s %.6f\nc\n", $1, $2, w, $1, $2, $1, $2, w
  if (++n == 24) exit
}' "$GRAPH" > "$UPDATES"
# The same mutation applied offline: first 24 edges reweighted by +1.5.
awk 'BEGIN { n = 0 }
  /^%/ { print; next }
  n < 24 { printf "%s %s %.6f\n", $1, $2, $3 + 1.5; n++; next }
  { print }' "$GRAPH" > "$POST_GRAPH"

echo "== applying updates under concurrent query load"
"$ABCS" client --port "$PORT2" --batch "$BATCH" --method delta \
  --connections "$SOAK_CLIENTS" --duration 5 >/dev/null &
LOAD_PID=$!
"$ABCS" client --port "$PORT2" --update-file "$UPDATES" >/dev/null
wait "$LOAD_PID"

echo "== post-update identity: daemon vs offline rebuild"
"$ABCS" index "$POST_GRAPH" "$POST_BUNDLE" >/dev/null
for method in online bicore delta; do
  "$ABCS" query --bundle "$POST_BUNDLE" --batch "$BATCH" --method "$method" \
    --threads 2 2>/dev/null \
    | sed -e 's/ touched=[0-9]*//' -e 's/ touched_arcs=[0-9]*//' \
    > "$WORK/offline.post.$method"
  "$ABCS" client --port "$PORT2" --batch "$BATCH" --method "$method" \
    2>/dev/null > "$WORK/served.post.$method"
  if ! diff -u "$WORK/offline.post.$method" "$WORK/served.post.$method"; then
    echo "serve_soak: post-update $method diverges from offline rebuild" >&2
    exit 1
  fi
  echo "   ok: $method (post-update)"
done

echo "== SIGTERM drain (update daemon)"
kill -TERM "$SERVER_PID"
DRAIN_RC=0
wait "$SERVER_PID" || DRAIN_RC=$?
SERVER_PID=""
if [[ "$DRAIN_RC" -ne 0 ]]; then
  echo "serve_soak: update daemon exited $DRAIN_RC after SIGTERM:" >&2
  cat "$SERVER2_LOG" >&2
  exit 1
fi
if ! grep -q "^# updates:" "$SERVER2_LOG"; then
  echo "serve_soak: no update summary in daemon log:" >&2
  cat "$SERVER2_LOG" >&2
  exit 1
fi
grep "^# updates:" "$SERVER2_LOG"

echo "== compacted bundle identity"
if [[ ! -s "$COMPACT" ]]; then
  echo "serve_soak: drain left no compacted bundle at $COMPACT" >&2
  exit 1
fi
for method in online bicore delta; do
  "$ABCS" query --bundle "$COMPACT" --batch "$BATCH" --method "$method" \
    --threads 2 2>/dev/null \
    | sed -e 's/ touched=[0-9]*//' -e 's/ touched_arcs=[0-9]*//' \
    > "$WORK/compact.$method"
  if ! diff -u "$WORK/offline.post.$method" "$WORK/compact.$method"; then
    echo "serve_soak: compacted bundle $method diverges from offline" >&2
    exit 1
  fi
  echo "   ok: $method (compacted bundle)"
done
echo "serve_soak: PASS"
